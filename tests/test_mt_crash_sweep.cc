/** @file Durable linearizability under power failure (ISSUE 10
 * acceptance): the sharded multi-threaded store is crashed at every
 * index of its cross-shard persistence-event total order, every shard
 * image is recovered independently, and the recovered whole-store
 * state must lie inside the set of linearizations admitted by the
 * logged operation history — silent==0 and containment==0 — for both
 * transaction engines, all four retention modes, and T in {2, 4}. */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.hh"
#include "crash/mt_crash_sweep.hh"

using namespace upr;

namespace
{

/** Same contract as the single-threaded sweep tests: keep the many
 * expected torn-log warnings quiet, never a Panic/Fatal. */
class QuietWarnings
{
  public:
    QuietWarnings()
    {
        setLogSink(+[](LogLevel level, const std::string &msg) {
            if (level == LogLevel::Panic || level == LogLevel::Fatal)
                std::fprintf(stderr, "%s\n", msg.c_str());
        });
    }
    ~QuietWarnings() { setLogSink(nullptr); }
};

void
runMtSweep(unsigned shards, EngineKind engine, CrashMode mode)
{
    QuietWarnings quiet;
    MtCrashSweepConfig cfg;
    cfg.shards = shards;
    cfg.engine = engine;
    cfg.mode = mode;
    cfg.seed = 99;
    // Keep the T=4 sweeps' point count (and so their wall time)
    // comparable to T=2: half the per-shard ops, twice the shards.
    cfg.opsPerShard = shards >= 4 ? 3 : 6;

    const MtCrashSweepResult result = mtCrashSweep(cfg);

    // The verdict: no recovered state outside the admissible
    // linearizations, no exception ever escaped a shard recovery.
    EXPECT_EQ(result.silent, 0u);
    EXPECT_EQ(result.containment, 0u);

    // The sweep must have been a real multi-shard exercise: a
    // non-trivial point count, genuine cross-shard interleaving in
    // the total order, and both recovery paths taken.
    if (engine == EngineKind::Undo) {
        EXPECT_GT(result.crashPoints, 100u);
    } else {
        EXPECT_GT(result.crashPoints, 20u);
    }
    EXPECT_GT(result.crossShardEvents, 0u);
    EXPECT_GT(result.rollbacks, 0u);
    EXPECT_GT(result.cleanImages, 0u);
}

} // namespace

// Undo engine, T = 2.

TEST(MtCrashSweepUndo2, DiscardUnfenced)
{
    runMtSweep(2, EngineKind::Undo, CrashMode::DiscardUnfenced);
}

TEST(MtCrashSweepUndo2, RetainRandom)
{
    runMtSweep(2, EngineKind::Undo, CrashMode::RetainRandom);
}

TEST(MtCrashSweepUndo2, RetainEpoch)
{
    runMtSweep(2, EngineKind::Undo, CrashMode::RetainEpoch);
}

TEST(MtCrashSweepUndo2, RetainBoundedStale)
{
    runMtSweep(2, EngineKind::Undo, CrashMode::RetainBoundedStale);
}

// Undo engine, T = 4.

TEST(MtCrashSweepUndo4, DiscardUnfenced)
{
    runMtSweep(4, EngineKind::Undo, CrashMode::DiscardUnfenced);
}

TEST(MtCrashSweepUndo4, RetainRandom)
{
    runMtSweep(4, EngineKind::Undo, CrashMode::RetainRandom);
}

TEST(MtCrashSweepUndo4, RetainEpoch)
{
    runMtSweep(4, EngineKind::Undo, CrashMode::RetainEpoch);
}

TEST(MtCrashSweepUndo4, RetainBoundedStale)
{
    runMtSweep(4, EngineKind::Undo, CrashMode::RetainBoundedStale);
}

// Redo engine, T = 2.

TEST(MtCrashSweepRedo2, DiscardUnfenced)
{
    runMtSweep(2, EngineKind::Redo, CrashMode::DiscardUnfenced);
}

TEST(MtCrashSweepRedo2, RetainRandom)
{
    runMtSweep(2, EngineKind::Redo, CrashMode::RetainRandom);
}

TEST(MtCrashSweepRedo2, RetainEpoch)
{
    runMtSweep(2, EngineKind::Redo, CrashMode::RetainEpoch);
}

TEST(MtCrashSweepRedo2, RetainBoundedStale)
{
    runMtSweep(2, EngineKind::Redo, CrashMode::RetainBoundedStale);
}

// Redo engine, T = 4.

TEST(MtCrashSweepRedo4, DiscardUnfenced)
{
    runMtSweep(4, EngineKind::Redo, CrashMode::DiscardUnfenced);
}

TEST(MtCrashSweepRedo4, RetainRandom)
{
    runMtSweep(4, EngineKind::Redo, CrashMode::RetainRandom);
}

TEST(MtCrashSweepRedo4, RetainEpoch)
{
    runMtSweep(4, EngineKind::Redo, CrashMode::RetainEpoch);
}

TEST(MtCrashSweepRedo4, RetainBoundedStale)
{
    runMtSweep(4, EngineKind::Redo, CrashMode::RetainBoundedStale);
}
