/** @file Parameterized semantics tests for the UPR runtime: the
 * Fig 3/4 behaviours must hold identically under every version, while
 * the stored pointer *formats* must be canonical per medium. */

#include <gtest/gtest.h>

#include "core/runtime.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.placement = Placement::Randomized;
    cfg.seed = 77;
    return cfg;
}

} // namespace

/** Fixture instantiated for all four versions. */
class RuntimeSemantics : public ::testing::TestWithParam<Version>
{
  protected:
    RuntimeSemantics() : rt(makeConfig(GetParam()))
    {
        pool = rt.createPool("tp", 1 << 20);
    }

    bool volatileVersion() const
    {
        return GetParam() == Version::Volatile;
    }

    Runtime rt;
    PoolId pool;
};

TEST_P(RuntimeSemantics, PmallocFormMatchesVersion)
{
    const PtrBits p = rt.pmallocBits(pool, 64);
    if (volatileVersion()) {
        EXPECT_EQ(PtrRepr::determineY(p), PtrForm::VirtualDram);
    } else {
        EXPECT_EQ(PtrRepr::determineY(p), PtrForm::Relative);
        EXPECT_EQ(PtrRepr::poolOf(p), pool);
    }
}

TEST_P(RuntimeSemantics, ResolveGivesUsableAddress)
{
    const PtrBits p = rt.pmallocBits(pool, 64);
    const SimAddr va = rt.resolveForAccess(p, 1);
    rt.storeData<std::uint64_t>(va, 0xBEEF);
    EXPECT_EQ(rt.loadData<std::uint64_t>(va), 0xBEEFULL);
    if (!volatileVersion()) {
        EXPECT_TRUE(Layout::isNvm(va));
    }
}

TEST_P(RuntimeSemantics, NullDereferenceFaults)
{
    EXPECT_THROW(rt.resolveForAccess(0, 1), Fault);
}

TEST_P(RuntimeSemantics, StorePtrIntoNvmKeepsRelativeFormat)
{
    if (volatileVersion())
        GTEST_SKIP() << "no NVM under Volatile";

    const PtrBits obj = rt.pmallocBits(pool, 64);
    const PtrBits target = rt.pmallocBits(pool, 64);
    const SimAddr obj_va = rt.resolveForAccess(obj, 1);

    // Store the *relative* pointer: stays relative.
    rt.storePtr(obj_va, target, 2);
    PtrBits stored = rt.space().read<PtrBits>(obj_va);
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::Relative);
    EXPECT_EQ(stored, target);

    // Store the *virtual* form of the same pointer: converted back
    // to the canonical relative format (paper soundness check).
    // Not applicable to Explicit, whose API only ever stores IDs.
    if (GetParam() == Version::Explicit)
        return;
    const SimAddr target_va = rt.resolveForAccess(target, 3);
    rt.storePtr(obj_va, PtrRepr::fromVa(target_va), 4);
    stored = rt.space().read<PtrBits>(obj_va);
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::Relative);
    EXPECT_EQ(stored, target);
}

TEST_P(RuntimeSemantics, StorePtrIntoDramConvertsToVirtual)
{
    if (volatileVersion())
        GTEST_SKIP();
    if (GetParam() == Version::Explicit)
        GTEST_SKIP() << "explicit API keeps object IDs everywhere";

    const PtrBits target = rt.pmallocBits(pool, 64);
    const SimAddr slot = rt.mallocBytes(8);

    rt.storePtr(slot, target, 5);
    const PtrBits stored = rt.space().read<PtrBits>(slot);
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::VirtualNvm);
    EXPECT_EQ(PtrRepr::toVa(stored), rt.resolveForAccess(target, 6));
}

TEST_P(RuntimeSemantics, StoredPointerSurvivesRelocation)
{
    if (volatileVersion())
        GTEST_SKIP();

    // Build: objA.ptr -> objB, objB.value = 123, root = objA.
    const PtrBits a = rt.pmallocBits(pool, 64);
    const PtrBits b = rt.pmallocBits(pool, 64);
    rt.storePtr(rt.resolveForAccess(a, 1), b, 2);
    rt.storeData<std::uint64_t>(rt.resolveForAccess(b, 3), 123);

    // Detach and reopen: the pool moves to a fresh address.
    const SimAddr base1 = rt.pools().baseOf(pool);
    rt.pools().detach(pool);
    rt.pools().openPool("tp");
    EXPECT_NE(rt.pools().baseOf(pool), base1);

    // The stored relative pointer still reaches objB.
    const PtrBits loaded =
        rt.loadPtr(rt.resolveForAccess(a, 4));
    EXPECT_EQ(PtrRepr::determineY(loaded), PtrForm::Relative);
    const SimAddr b_va = rt.resolveForAccess(loaded, 5);
    EXPECT_EQ(rt.loadData<std::uint64_t>(b_va), 123u);
}

TEST_P(RuntimeSemantics, DetachedPoolDereferenceFaults)
{
    if (volatileVersion())
        GTEST_SKIP();

    const PtrBits p = rt.pmallocBits(pool, 64);
    rt.pools().detach(pool);
    // Fig 10: ra2va on a detached pool faults rather than silently
    // using a stale translation.
    try {
        rt.resolveForAccess(p, 1);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolDetached);
    }
}

TEST_P(RuntimeSemantics, EqualityNormalizesForms)
{
    const PtrBits p = rt.pmallocBits(pool, 64);
    const PtrBits q = rt.pmallocBits(pool, 64);
    EXPECT_TRUE(rt.ptrEq(p, p, 1));
    EXPECT_FALSE(rt.ptrEq(p, q, 2));
    EXPECT_FALSE(rt.ptrEq(p, 0, 3));
    EXPECT_TRUE(rt.ptrEq(0, 0, 4));

    if (!volatileVersion() && GetParam() != Version::Explicit) {
        // The relative and virtual forms of one object are equal.
        const SimAddr va = rt.resolveForAccess(p, 5);
        EXPECT_TRUE(rt.ptrEq(p, PtrRepr::fromVa(va), 6));
    }
}

TEST_P(RuntimeSemantics, OrderingMatchesAllocationLayout)
{
    const PtrBits arr = rt.pmallocBits(pool, 256);
    const PtrBits mid = rt.ptrAddBytes(arr, 128, 1);
    EXPECT_TRUE(rt.ptrLt(arr, mid, 2));
    EXPECT_FALSE(rt.ptrLt(mid, arr, 3));
    EXPECT_FALSE(rt.ptrLt(arr, arr, 4));
}

TEST_P(RuntimeSemantics, ArithmeticAndDifference)
{
    const PtrBits arr = rt.pmallocBits(pool, 256);
    const PtrBits p16 = rt.ptrAddBytes(arr, 16, 1);
    const PtrBits p16b = rt.ptrAddBytes(p16, 0, 2);
    EXPECT_TRUE(rt.ptrEq(p16, p16b, 3));
    EXPECT_EQ(rt.ptrDiffBytes(p16, arr, 4), 16);
    EXPECT_EQ(rt.ptrDiffBytes(arr, p16, 5), -16);

    // The element reached by arithmetic is the right memory.
    rt.storeData<std::uint8_t>(rt.resolveForAccess(p16, 6), 0x5A);
    const SimAddr arr_va = rt.resolveForAccess(arr, 7);
    EXPECT_EQ(rt.space().read<std::uint8_t>(arr_va + 16), 0x5A);
}

TEST_P(RuntimeSemantics, PtrToIntYieldsVirtualAddress)
{
    const PtrBits p = rt.pmallocBits(pool, 64);
    const std::uint64_t i = rt.ptrToInt(p, 1);
    // (I)p must produce the virtual address, whatever the storage
    // form (Fig 4 cast rows).
    EXPECT_EQ(i, rt.resolveForAccess(p, 2));
    // And (T*)i round-trips to a usable pointer.
    const PtrBits back = rt.intToPtr(i);
    rt.storeData<std::uint32_t>(rt.resolveForAccess(back, 3), 7);
}

TEST_P(RuntimeSemantics, CountersBehavePerVersion)
{
    const PtrBits p = rt.pmallocBits(pool, 64);
    rt.resetCounters();
    rt.resolveForAccess(p, 1);
    switch (GetParam()) {
      case Version::Volatile:
        EXPECT_EQ(rt.dynamicChecks(), 0u);
        EXPECT_EQ(rt.relToAbs(), 0u);
        break;
      case Version::Sw:
        EXPECT_EQ(rt.dynamicChecks(), 1u);
        EXPECT_EQ(rt.relToAbs(), 1u);
        break;
      case Version::Hw:
      case Version::Explicit:
        EXPECT_EQ(rt.dynamicChecks(), 0u);
        EXPECT_EQ(rt.relToAbs(), 1u);
        break;
    }
}

TEST_P(RuntimeSemantics, VolatileHeapPointersAlwaysVirtualDram)
{
    const SimAddr p = rt.mallocBytes(32);
    EXPECT_EQ(PtrRepr::determineY(PtrRepr::fromVa(p)),
              PtrForm::VirtualDram);
    rt.storeData<int>(p, -5);
    EXPECT_EQ(rt.loadData<int>(p), -5);
    rt.freeBytes(p);
}

TEST_P(RuntimeSemantics, PfreeWorksOnCanonicalPointer)
{
    const PtrBits p = rt.pmallocBits(pool, 64);
    EXPECT_NO_THROW(rt.pfreeBits(p));
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, RuntimeSemantics,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });

// ---------------------------------------------------------------------
// Version-specific behaviours
// ---------------------------------------------------------------------

TEST(RuntimeHw, ConversionReuseSkipsTranslations)
{
    Runtime rt(makeConfig(Version::Hw));
    const PoolId pool = rt.createPool("p", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);

    rt.resetCounters();
    rt.resolveForAccess(p, 1);
    rt.resolveForAccess(p, 1);
    rt.resolveForAccess(p, 1);
    // Only the first resolve translates; the rest reuse (Fig 12).
    EXPECT_EQ(rt.relToAbs(), 1u);
}

TEST(RuntimeHw, ReuseDisabledTranslatesEveryTime)
{
    Runtime::Config cfg = makeConfig(Version::Hw);
    cfg.hwConversionReuse = false;
    Runtime rt(cfg);
    const PoolId pool = rt.createPool("p", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);

    rt.resetCounters();
    rt.resolveForAccess(p, 1);
    rt.resolveForAccess(p, 1);
    rt.resolveForAccess(p, 1);
    EXPECT_EQ(rt.relToAbs(), 3u);
}

TEST(RuntimeHw, ReuseInvalidatedByPoolEpoch)
{
    Runtime rt(makeConfig(Version::Hw));
    const PoolId pool = rt.createPool("p", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);

    const SimAddr va1 = rt.resolveForAccess(p, 1);
    rt.pools().detach(pool);
    rt.pools().openPool("p");
    // Stale cached translation must not be reused after relocation.
    const SimAddr va2 = rt.resolveForAccess(p, 1);
    EXPECT_NE(va1, va2);
    EXPECT_EQ(va2, rt.pools().baseOf(pool) +
                   PtrRepr::offsetOf(p));
}

TEST(RuntimeExplicit, NoReuseEver)
{
    Runtime rt(makeConfig(Version::Explicit));
    const PoolId pool = rt.createPool("p", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);

    rt.resetCounters();
    for (int i = 0; i < 10; ++i)
        rt.resolveForAccess(p, 1);
    EXPECT_EQ(rt.relToAbs(), 10u);
}

TEST(RuntimeSw, ChecksFeedBranchPredictor)
{
    Runtime rt(makeConfig(Version::Sw));
    const PoolId pool = rt.createPool("p", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);
    const SimAddr v = rt.mallocBytes(64);

    const auto before = rt.machine().bpred().branches();
    rt.resolveForAccess(p, 1);
    rt.resolveForAccess(PtrRepr::fromVa(v), 1);
    // Two determineY check branches, plus the software conversion's
    // pool-lookup branches for the relative pointer.
    EXPECT_EQ(rt.machine().bpred().branches() - before,
              2u + rt.config().machine.swConvertBranches);
}

TEST(RuntimeStrictStoreP, DramPointerIntoNvmFaults)
{
    for (Version v : {Version::Sw, Version::Hw}) {
        Runtime::Config cfg = makeConfig(v);
        cfg.strictStoreP = true;
        Runtime rt(cfg);
        const PoolId pool = rt.createPool("p", 1 << 20);
        const PtrBits obj = rt.pmallocBits(pool, 64);
        const SimAddr heap_obj = rt.mallocBytes(16);
        const SimAddr obj_va = rt.resolveForAccess(obj, 1);
        try {
            rt.storePtr(obj_va, PtrRepr::fromVa(heap_obj), 2);
            FAIL() << versionName(v);
        } catch (const Fault &f) {
            EXPECT_EQ(f.kind(), FaultKind::StorePFault);
        }
    }
}

TEST(RuntimeLenientStoreP, DramPointerIntoNvmStoredRaw)
{
    Runtime rt(makeConfig(Version::Hw));
    const PoolId pool = rt.createPool("p", 1 << 20);
    const PtrBits obj = rt.pmallocBits(pool, 64);
    const SimAddr heap_obj = rt.mallocBytes(16);
    const SimAddr obj_va = rt.resolveForAccess(obj, 1);
    rt.storePtr(obj_va, PtrRepr::fromVa(heap_obj), 2);
    EXPECT_EQ(rt.space().read<PtrBits>(obj_va),
              PtrRepr::fromVa(heap_obj));
}

TEST(RuntimeTiming, SwSlowerThanHwOnPointerChasing)
{
    // A microscopic preview of Fig 11: chase one persistent pointer
    // chain under SW and HW; SW must burn more cycles.
    auto run = [](Version v) {
        Runtime rt(makeConfig(v));
        const PoolId pool = rt.createPool("p", 4 << 20);
        // Chain of 1000 nodes: node[i].next = node[i+1].
        PtrBits first = rt.pmallocBits(pool, 16);
        PtrBits prev = first;
        for (int i = 1; i < 1000; ++i) {
            PtrBits n = rt.pmallocBits(pool, 16);
            rt.storePtr(rt.resolveForAccess(prev, 1), n, 2);
            prev = n;
        }
        rt.storePtr(rt.resolveForAccess(prev, 1), 0, 2);
        const Cycles start = rt.machine().now();
        PtrBits cur = first;
        while (cur != 0)
            cur = rt.loadPtr(rt.resolveForAccess(cur, 3));
        return rt.machine().now() - start;
    };
    EXPECT_GT(run(Version::Sw), run(Version::Hw));
}
