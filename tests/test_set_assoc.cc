/** @file Unit tests for the generic set-associative array. */

#include <gtest/gtest.h>

#include "arch/set_assoc.hh"

using namespace upr;

TEST(SetAssoc, MissThenHit)
{
    SetAssocArray<std::uint64_t, int> arr(4, 2);
    EXPECT_EQ(arr.lookup(0, 10), nullptr);
    arr.insert(0, 10, 42);
    int *p = arr.lookup(0, 10);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 42);
}

TEST(SetAssoc, SetsAreIndependent)
{
    SetAssocArray<std::uint64_t, int> arr(4, 1);
    arr.insert(0, 5, 1);
    arr.insert(1, 5, 2);
    EXPECT_EQ(*arr.lookup(0, 5), 1);
    EXPECT_EQ(*arr.lookup(1, 5), 2);
}

TEST(SetAssoc, LruEvictionOrder)
{
    SetAssocArray<std::uint64_t, int> arr(1, 2);
    arr.insert(0, 1, 1);
    arr.insert(0, 2, 2);
    // Touch tag 1 so tag 2 becomes LRU.
    EXPECT_NE(arr.lookup(0, 1), nullptr);
    int evicted = 0;
    EXPECT_TRUE(arr.insert(0, 3, 3, &evicted));
    EXPECT_EQ(evicted, 2);
    EXPECT_NE(arr.lookup(0, 1), nullptr);
    EXPECT_EQ(arr.lookup(0, 2), nullptr);
    EXPECT_NE(arr.lookup(0, 3), nullptr);
}

TEST(SetAssoc, InsertIntoFreeWayDoesNotEvict)
{
    SetAssocArray<std::uint64_t, int> arr(1, 4);
    EXPECT_FALSE(arr.insert(0, 1, 1));
    EXPECT_FALSE(arr.insert(0, 2, 2));
    EXPECT_FALSE(arr.insert(0, 3, 3));
    EXPECT_FALSE(arr.insert(0, 4, 4));
    EXPECT_TRUE(arr.insert(0, 5, 5));
    EXPECT_EQ(arr.validCount(), 4u);
}

TEST(SetAssoc, InvalidateSingle)
{
    SetAssocArray<std::uint64_t, int> arr(2, 2);
    arr.insert(0, 7, 7);
    arr.invalidate(0, 7);
    EXPECT_EQ(arr.lookup(0, 7), nullptr);
    // Invalidating a missing tag is harmless.
    arr.invalidate(0, 99);
}

TEST(SetAssoc, InvalidateAll)
{
    SetAssocArray<std::uint64_t, int> arr(2, 2);
    arr.insert(0, 1, 1);
    arr.insert(1, 2, 2);
    arr.invalidateAll();
    EXPECT_EQ(arr.validCount(), 0u);
    EXPECT_EQ(arr.lookup(0, 1), nullptr);
    EXPECT_EQ(arr.lookup(1, 2), nullptr);
}

TEST(SetAssoc, PeekDoesNotChangeLru)
{
    SetAssocArray<std::uint64_t, int> arr(1, 2);
    arr.insert(0, 1, 1);
    arr.insert(0, 2, 2);
    // Peek at 1 (no LRU update): 1 is still LRU and gets evicted.
    EXPECT_NE(arr.peek(0, 1), nullptr);
    int evicted = 0;
    arr.insert(0, 3, 3, &evicted);
    EXPECT_EQ(evicted, 1);
}

TEST(SetAssoc, ForEachValidVisitsAll)
{
    SetAssocArray<std::uint64_t, int> arr(2, 2);
    arr.insert(0, 1, 10);
    arr.insert(1, 2, 20);
    int sum = 0, count = 0;
    arr.forEachValid([&](std::uint32_t, std::uint64_t, int v) {
        sum += v;
        ++count;
    });
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sum, 30);
}
