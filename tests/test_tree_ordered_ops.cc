/** @file Tests for the ordered-query extensions on the search trees:
 * minKey/maxKey, lowerBound, and in-order range scans — checked
 * against a std::map oracle across tree types and versions. */

#include <gtest/gtest.h>

#include <map>

#include "common/random.hh"
#include "containers/avl_tree.hh"
#include "containers/rb_tree.hh"
#include "containers/scapegoat_tree.hh"
#include "containers/splay_tree.hh"

using namespace upr;

namespace
{

const Version kAllVersions[] = {Version::Volatile, Version::Sw,
                                Version::Hw, Version::Explicit};

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 61;
    return cfg;
}

} // namespace

template <typename TreeT>
class TreeOrderedOps : public ::testing::Test
{
  protected:
    template <typename Body>
    void
    forEachVersion(Body &&body)
    {
        for (Version v : kAllVersions) {
            SCOPED_TRACE(versionName(v));
            Runtime rt(makeConfig(v));
            RuntimeScope scope(rt);
            const PoolId pool = rt.createPool("p", 32 << 20);
            TreeT tree(MemEnv::persistentEnv(rt, pool));
            body(tree);
        }
    }
};

using TreeTypes = ::testing::Types<
    RbTree<std::uint64_t, std::uint64_t>,
    AvlTree<std::uint64_t, std::uint64_t>,
    SplayTree<std::uint64_t, std::uint64_t>,
    ScapegoatTree<std::uint64_t, std::uint64_t>>;

TYPED_TEST_SUITE(TreeOrderedOps, TreeTypes);

TYPED_TEST(TreeOrderedOps, MinMaxOnEmptyAndGrowing)
{
    this->forEachVersion([](TypeParam &tree) {
        EXPECT_FALSE(tree.minKey().has_value());
        EXPECT_FALSE(tree.maxKey().has_value());
        tree.insert(50, 1);
        EXPECT_EQ(tree.minKey().value(), 50u);
        EXPECT_EQ(tree.maxKey().value(), 50u);
        tree.insert(10, 1);
        tree.insert(90, 1);
        EXPECT_EQ(tree.minKey().value(), 10u);
        EXPECT_EQ(tree.maxKey().value(), 90u);
        tree.erase(10);
        EXPECT_EQ(tree.minKey().value(), 50u);
    });
}

TYPED_TEST(TreeOrderedOps, LowerBoundSemantics)
{
    this->forEachVersion([](TypeParam &tree) {
        for (std::uint64_t k : {10, 20, 30, 40})
            tree.insert(k, k * 10);

        // Exact hit.
        auto lb = tree.lowerBound(20);
        ASSERT_TRUE(lb.has_value());
        EXPECT_EQ(lb->first, 20u);
        EXPECT_EQ(lb->second, 200u);

        // Between keys: rounds up.
        lb = tree.lowerBound(21);
        ASSERT_TRUE(lb.has_value());
        EXPECT_EQ(lb->first, 30u);

        // Below the minimum.
        EXPECT_EQ(tree.lowerBound(0)->first, 10u);

        // Above the maximum: no bound.
        EXPECT_FALSE(tree.lowerBound(41).has_value());
    });
}

TYPED_TEST(TreeOrderedOps, RangeScanMatchesOracle)
{
    this->forEachVersion([](TypeParam &tree) {
        std::map<std::uint64_t, std::uint64_t> oracle;
        Rng rng(77);
        for (int i = 0; i < 300; ++i) {
            const std::uint64_t k = rng.nextBounded(1000);
            const std::uint64_t v = rng.next();
            tree.insert(k, v);
            oracle[k] = v;
        }

        for (auto [lo, hi] : {std::pair<std::uint64_t, std::uint64_t>
                                  {100, 300},
                              {0, 1000},
                              {500, 500},
                              {999, 1'000'000}}) {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
            tree.forEachInRange(lo, hi,
                                [&](std::uint64_t k, std::uint64_t v) {
                                    got.emplace_back(k, v);
                                });
            std::vector<std::pair<std::uint64_t, std::uint64_t>> want(
                oracle.lower_bound(lo), oracle.lower_bound(hi));
            ASSERT_EQ(got, want) << "range [" << lo << "," << hi
                                 << ")";
        }
    });
}

TYPED_TEST(TreeOrderedOps, RandomizedLowerBoundAgainstOracle)
{
    this->forEachVersion([](TypeParam &tree) {
        std::map<std::uint64_t, std::uint64_t> oracle;
        Rng rng(13);
        for (int i = 0; i < 400; ++i) {
            const std::uint64_t k = rng.nextBounded(5000);
            tree.insert(k, k);
            oracle[k] = k;
        }
        for (int probe = 0; probe < 500; ++probe) {
            const std::uint64_t q = rng.nextBounded(6000);
            auto got = tree.lowerBound(q);
            auto want = oracle.lower_bound(q);
            if (want == oracle.end()) {
                ASSERT_FALSE(got.has_value()) << q;
            } else {
                ASSERT_TRUE(got.has_value()) << q;
                ASSERT_EQ(got->first, want->first) << q;
            }
        }
    });
}
