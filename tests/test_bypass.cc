/** @file Tests for the non-PMO bypass predictor (paper future work). */

#include <gtest/gtest.h>

#include "containers/rb_tree.hh"

using namespace upr;

TEST(BypassPredictor, LearnsStablePages)
{
    BypassPredictor bp(256);
    const SimAddr dram = 0x10000;
    const SimAddr nvm = Layout::kNvmBase + 0x10000;

    // Warm up both pages.
    for (int i = 0; i < 8; ++i) {
        bp.access(dram, 1);
        bp.access(nvm, 1);
    }
    const auto miss_before = bp.mispredicts();
    Cycles dram_cost = 0, nvm_cost = 0;
    for (int i = 0; i < 100; ++i) {
        dram_cost += bp.access(dram, 1);
        nvm_cost += bp.access(nvm, 1);
    }
    EXPECT_EQ(bp.mispredicts(), miss_before); // fully learned
    EXPECT_EQ(dram_cost, 0u);   // non-PMO accesses bypass entirely
    EXPECT_EQ(nvm_cost, 100u);  // PMO accesses pay the probe
}

TEST(BypassPredictor, ColdPmoPageMispredictsOnceThenLearns)
{
    BypassPredictor bp(256);
    const SimAddr nvm = Layout::kNvmBase + 0x123000;
    // Counters initialize to weak non-PMO: the first PMO access at a
    // cold entry mispredicts and pays double...
    EXPECT_EQ(bp.access(nvm, 10), 20u);
    EXPECT_EQ(bp.mispredicts(), 1u);
    // ...the second access predicts PMO and pays the single probe.
    EXPECT_EQ(bp.access(nvm, 10), 10u);
    EXPECT_EQ(bp.mispredicts(), 1u);
}

TEST(MmuFront, PredictionHelpsMixedWorkloads)
{
    // A mixed workload: one persistent tree, one volatile tree, both
    // exercised — roughly half the traffic can bypass the probe.
    auto runCycles = [](MmuFrontModel model) {
        Runtime::Config cfg;
        cfg.version = Version::Hw;
        cfg.seed = 9;
        cfg.mmuFront = model;
        Runtime rt(cfg);
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("p", 16 << 20);
        RbTree<std::uint64_t, std::uint64_t> pers(
            MemEnv::persistentEnv(rt, pool));
        RbTree<std::uint64_t, std::uint64_t> vol(
            MemEnv::volatileEnv(rt));
        for (std::uint64_t i = 0; i < 500; ++i) {
            pers.insert(i, i);
            vol.insert(i, i);
        }
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < 500; ++i)
            sum += pers.find(i).value() + vol.find(i).value();
        EXPECT_EQ(sum, 2 * (500u * 499 / 2));
        return rt.machine().now();
    };

    const Cycles none = runCycles(MmuFrontModel::None);
    const Cycles always = runCycles(MmuFrontModel::Always);
    const Cycles predicted = runCycles(MmuFrontModel::Predicted);

    // Always > Predicted > None: prediction recovers much of the
    // probe delay; PMO accesses still pay it.
    EXPECT_GT(always, predicted);
    EXPECT_GT(predicted, none);
}

TEST(MmuFront, VolatileAndSwUnaffected)
{
    for (Version v : {Version::Volatile, Version::Sw}) {
        SCOPED_TRACE(versionName(v));
        auto runCycles = [&](MmuFrontModel model) {
            Runtime::Config cfg;
            cfg.version = v;
            cfg.seed = 9;
            cfg.mmuFront = model;
            Runtime rt(cfg);
            RuntimeScope scope(rt);
            const PoolId pool = rt.createPool("p", 8 << 20);
            RbTree<std::uint64_t, std::uint64_t> tree(
                MemEnv::persistentEnv(rt, pool));
            for (std::uint64_t i = 0; i < 100; ++i)
                tree.insert(i, i);
            return rt.machine().now();
        };
        // The SW/Volatile versions have no POLB/VALB in the MMU.
        EXPECT_EQ(runCycles(MmuFrontModel::None),
                  runCycles(MmuFrontModel::Always));
    }
}

TEST(MmuFront, PredictorBypassesMostVolatileTraffic)
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 9;
    cfg.mmuFront = MmuFrontModel::Predicted;
    Runtime rt(cfg);
    RuntimeScope scope(rt);

    // A purely volatile workload: nearly everything should bypass.
    RbTree<std::uint64_t, std::uint64_t> tree(
        MemEnv::volatileEnv(rt));
    for (std::uint64_t i = 0; i < 1000; ++i)
        tree.insert(i, i);
    const auto &bp = rt.machine().bypass();
    EXPECT_GT(bp.bypassed(), rt.machine().memAccesses() * 9 / 10);
}
