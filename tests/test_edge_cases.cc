/** @file Edge cases across modules: image corruption, parser error
 * paths, cross-pool value operations, and API misuse that must fail
 * loudly rather than corrupt state. */

#include <gtest/gtest.h>

#include <fstream>

#include "compiler/ir_parser.hh"
#include "containers/memory_env.hh"
#include "nvm/pool_manager.hh"

using namespace upr;

// ---------------------------------------------------------------------
// Pool image corruption
// ---------------------------------------------------------------------

namespace
{

std::string
writeTempImage(const std::vector<std::uint8_t> &bytes,
               const std::string &name)
{
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    return path;
}

} // namespace

TEST(ImageCorruption, FlippedMagicRejected)
{
    AddressSpace space;
    PoolManager mgr(space);
    const PoolId id = mgr.createPool("src", 1 << 20);
    const std::string good = ::testing::TempDir() + "/good.img";
    mgr.saveImage(id, good);

    std::ifstream is(good, std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    bytes[0] ^= 0xFF; // corrupt the magic
    const std::string bad = writeTempImage(bytes, "bad_magic.img");

    AddressSpace space2;
    PoolManager mgr2(space2);
    EXPECT_THROW(mgr2.loadImage(bad, "x"), Fault);
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(ImageCorruption, TruncatedImageRejected)
{
    AddressSpace space;
    PoolManager mgr(space);
    const PoolId id = mgr.createPool("src", 1 << 20);
    const std::string good = ::testing::TempDir() + "/good2.img";
    mgr.saveImage(id, good);

    std::ifstream is(good, std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2); // size-field mismatch
    const std::string bad = writeTempImage(bytes, "truncated.img");

    AddressSpace space2;
    PoolManager mgr2(space2);
    EXPECT_THROW(mgr2.loadImage(bad, "x"), Fault);
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(ImageCorruption, DuplicatePoolIdRejectedOnLoad)
{
    AddressSpace space;
    PoolManager mgr(space);
    const PoolId id = mgr.createPool("orig", 1 << 20);
    const std::string img = ::testing::TempDir() + "/dup.img";
    mgr.saveImage(id, img);
    // The image's ID collides with the still-live pool.
    EXPECT_THROW(mgr.loadImage(img, "copy"), Fault);
    std::remove(img.c_str());
}

// ---------------------------------------------------------------------
// IR parser error paths
// ---------------------------------------------------------------------

TEST(IrParserErrors, UnknownBranchTarget)
{
    EXPECT_THROW(ir::parseModule(R"(
func @f(%c: i64) {
entry:
  br %c, nowhere, entry
}
)"),
                 Fault);
}

TEST(IrParserErrors, MalformedPhiBrackets)
{
    EXPECT_THROW(ir::parseModule(R"(
func @f() -> i64 {
entry:
  %x = phi.i64 entry, %x
  ret %x
}
)"),
                 Fault);
}

TEST(IrParserErrors, NestedFunctionRejected)
{
    EXPECT_THROW(ir::parseModule(
                     "func @a() {\nfunc @b() {\n}\n}\n"),
                 Fault);
}

TEST(IrParserErrors, MissingClosingBrace)
{
    EXPECT_THROW(ir::parseModule("func @f() {\nentry:\n  ret\n"),
                 Fault);
}

TEST(IrParserErrors, RedefinedValueRejected)
{
    EXPECT_THROW(ir::parseModule(R"(
func @f() -> i64 {
entry:
  %x = const 1
  %x = const 2
  ret %x
}
)"),
                 Fault);
}

TEST(IrParserErrors, CallArityMismatchCaught)
{
    try {
        ir::parseModule(R"(
func @g(%a: i64) -> i64 {
entry:
  ret %a
}

func @f() {
entry:
  call @g()
  ret
}
)");
        FAIL() << "expected a verifier Fault";
    } catch (const Fault &f) {
        EXPECT_NE(std::string(f.what()).find("arity"),
                  std::string::npos)
            << f.what();
        // The verifier locates the offending call site.
        EXPECT_NE(std::string(f.what()).find("line 9"),
                  std::string::npos)
            << f.what();
    }
}

// ---------------------------------------------------------------------
// Cross-pool and mixed-form value operations
// ---------------------------------------------------------------------

namespace
{

struct Cell
{
    std::uint64_t v = 0;
};

} // namespace

TEST(CrossPoolValues, DiffAndOrderingAcrossPools)
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId a = rt.createPool("a", 1 << 20);
    const PoolId b = rt.createPool("b", 1 << 20);

    const PtrBits pa = rt.pmallocBits(a, 64);
    const PtrBits pb = rt.pmallocBits(b, 64);

    // Cross-pool difference = virtual-address difference.
    const std::int64_t d = rt.ptrDiffBytes(pa, pb, 1);
    const std::int64_t want =
        static_cast<std::int64_t>(rt.resolveForAccess(pa, 2)) -
        static_cast<std::int64_t>(rt.resolveForAccess(pb, 3));
    EXPECT_EQ(d, want);

    // Ordering is consistent with the difference's sign.
    EXPECT_EQ(rt.ptrLt(pa, pb, 4), d < 0);
}

TEST(CrossPoolValues, MixedFormComparisonAgrees)
{
    Runtime::Config cfg;
    cfg.version = Version::Sw;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 1 << 20);

    const PtrBits ra = rt.pmallocBits(pool, 64);
    const PtrBits va = PtrRepr::fromVa(rt.resolveForAccess(ra, 1));
    // RA form vs VA form of the same object: equal under Fig 4.
    EXPECT_TRUE(rt.ptrEq(ra, va, 2));
    EXPECT_FALSE(rt.ptrLt(ra, va, 3));
    EXPECT_FALSE(rt.ptrLt(va, ra, 4));
    // And against a different object, both forms agree on ordering.
    const PtrBits other = rt.pmallocBits(pool, 64);
    EXPECT_EQ(rt.ptrLt(ra, other, 5), rt.ptrLt(va, other, 6));
}

// ---------------------------------------------------------------------
// API misuse
// ---------------------------------------------------------------------

TEST(ApiMisuse, OpenPoolWhileAttachedThrows)
{
    AddressSpace space;
    PoolManager mgr(space);
    mgr.createPool("p", 1 << 20);
    EXPECT_THROW(mgr.openPool("p"), Fault);
}

TEST(ApiMisuse, CommitWithoutBeginPanics)
{
    Runtime rt;
    EXPECT_DEATH(rt.commitTxn(), "without beginTxn");
}

TEST(ApiMisuse, EnvAllocAfterPoolDestroyFaults)
{
    Runtime rt;
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("gone", 1 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    rt.pools().destroy(pool);
    EXPECT_DEATH((void)env.alloc<Cell>(), "unknown pool");
}

TEST(ApiMisuse, ScopeNestingRestoresPrevious)
{
    Runtime a, b;
    RuntimeScope sa(a);
    EXPECT_EQ(&currentRuntime(), &a);
    {
        RuntimeScope sb(b);
        EXPECT_EQ(&currentRuntime(), &b);
    }
    EXPECT_EQ(&currentRuntime(), &a);
}
