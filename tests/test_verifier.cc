/** @file Tests for the IR verifier: structural/type well-formedness
 * diagnostics, located parse-time errors, and the warning-only
 * findings (mixed compares, unreachable blocks). */

#include <gtest/gtest.h>

#include "common/diag.hh"
#include "common/fault.hh"
#include "compiler/analysis/verifier.hh"
#include "compiler/ir_parser.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

/** Parse @p source expecting a verify error whose message contains
 * every string in @p needles. */
void
expectVerifyFault(const char *source,
                  std::initializer_list<const char *> needles)
{
    try {
        parseModule(source);
        FAIL() << "expected an IR verify error";
    } catch (const Fault &f) {
        const std::string msg = f.what();
        EXPECT_NE(msg.find("IR verify error"), std::string::npos)
            << msg;
        for (const char *n : needles)
            EXPECT_NE(msg.find(n), std::string::npos)
                << "missing '" << n << "' in: " << msg;
    }
}

/** First diagnostic with the given code, or nullptr. */
const Diagnostic *
findCode(const DiagnosticEngine &diags, const std::string &code)
{
    for (const Diagnostic &d : diags.all()) {
        if (d.code == code)
            return &d;
    }
    return nullptr;
}

} // namespace

TEST(Verifier, CleanModuleHasNoFindings)
{
    Module mod = parseModule(R"(
func @main(%n: i64) -> i64 {
entry:
  %p = pmalloc 16
  %zero = const 0
  store %zero, %p
  %v = load.i64 %p
  pfree %p
  ret %v
}
)");
    DiagnosticEngine diags;
    EXPECT_TRUE(verifyModule(mod, diags));
    EXPECT_TRUE(diags.empty()) << diags.render();
}

TEST(Verifier, MissingTerminatorIsLocated)
{
    // Block 'entry' falls off the end at line 4.
    expectVerifyFault(R"(
func @f() {
entry:
  %a = const 1
}
)",
                      {"verify-missing-terminator", "line 4"});
}

TEST(Verifier, TerminatorMidBlock)
{
    expectVerifyFault(R"(
func @f() {
entry:
  ret
  %a = const 1
  ret
}
)",
                      {"verify-terminator-mid-block"});
}

TEST(Verifier, DefDoesNotReachUseOnAllPaths)
{
    // %x is defined only on the 'yes' path but used after the join.
    expectVerifyFault(R"(
func @f(%c: i64) -> i64 {
entry:
  br %c, yes, no
yes:
  %x = const 7
  jmp out
no:
  jmp out
out:
  ret %x
}
)",
                      {"verify-def-before-use", "%x"});
}

TEST(Verifier, UseBeforeDefInSameBlock)
{
    // Textual use-before-def is already a (located) parse error; the
    // dataflow pass only has to handle the cross-block cases.
    try {
        parseModule(R"(
func @f() -> i64 {
entry:
  %b = add %a, %a
  %a = const 1
  ret %b
}
)");
        FAIL() << "expected a parse error";
    } catch (const Fault &f) {
        const std::string msg = f.what();
        EXPECT_NE(msg.find("used before definition"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
    }
}

TEST(Verifier, PhiMissingPredecessor)
{
    // The phi claims an incoming edge from 'other', which is not a
    // CFG predecessor of 'out'.
    expectVerifyFault(R"(
func @f(%c: i64) -> i64 {
entry:
  %a = const 1
  jmp out
other:
  %b = const 2
  jmp out
out:
  %x = phi.i64 [other, %b]
  ret %x
}
)",
                      {"verify-phi-pred"});
}

TEST(Verifier, PhiNotAtBlockTop)
{
    expectVerifyFault(R"(
func @f(%c: i64) -> i64 {
entry:
  %a = const 1
  jmp out
out:
  %b = const 2
  %x = phi.i64 [entry, %a]
  ret %x
}
)",
                      {"verify-phi-not-at-top"});
}

TEST(Verifier, StoreAddressMustBePointer)
{
    expectVerifyFault(R"(
func @f() {
entry:
  %v = const 1
  store %v, %v
  ret
}
)",
                      {"verify-operand-type"});
}

TEST(Verifier, StorePValueMustBePointer)
{
    expectVerifyFault(R"(
func @f() {
entry:
  %p = pmalloc 16
  %v = const 1
  storep %v, %p
  ret
}
)",
                      {"verify-operand-type"});
}

TEST(Verifier, ReturnTypeMismatch)
{
    expectVerifyFault(R"(
func @f() -> i64 {
entry:
  %p = pmalloc 16
  ret %p
}
)",
                      {"verify-operand-type", "must be i64"});
}

TEST(Verifier, VoidReturnWithValue)
{
    expectVerifyFault(R"(
func @f() {
entry:
  %v = const 1
  ret %v
}
)",
                      {"verify-return-type"});
}

TEST(Verifier, UndefinedCalleeCaughtAtModuleClose)
{
    expectVerifyFault(R"(
func @f() {
entry:
  call @nope()
  ret
}
)",
                      {"verify-undefined-callee", "@nope"});
}

TEST(Verifier, CallArgumentTypeMismatch)
{
    expectVerifyFault(R"(
func @g(%p: ptr) {
entry:
  ret
}

func @f() {
entry:
  %v = const 1
  call @g(%v)
  ret
}
)",
                      {"verify-call-type"});
}

TEST(Verifier, MixedCompareIsWarningOnly)
{
    // Comparing a pointer with an integer parses fine (the paper's
    // legacy code does this through ptrtoint all the time when the
    // cast is implicit) but the verifier flags it as suspicious.
    Module mod = parseModule(R"(
func @f(%p: ptr, %n: i64) -> i64 {
entry:
  %r = eq %p, %n
  ret %r
}
)");
    DiagnosticEngine diags;
    EXPECT_TRUE(verifyModule(mod, diags)); // warnings keep it true
    EXPECT_EQ(diags.errorCount(), 0u);
    const Diagnostic *d = findCode(diags, "verify-mixed-compare");
    ASSERT_NE(d, nullptr) << diags.render();
    EXPECT_EQ(d->severity, DiagSeverity::Warning);
    EXPECT_TRUE(d->loc.known());
}

TEST(Verifier, UnreachableBlockIsWarningOnly)
{
    Module mod = parseModule(R"(
func @f() -> i64 {
entry:
  %a = const 1
  ret %a
island:
  %b = const 2
  ret %b
}
)");
    DiagnosticEngine diags;
    EXPECT_TRUE(verifyModule(mod, diags));
    EXPECT_EQ(diags.errorCount(), 0u);
    const Diagnostic *d =
        findCode(diags, "verify-unreachable-block");
    ASSERT_NE(d, nullptr) << diags.render();
    EXPECT_EQ(d->severity, DiagSeverity::Warning);
}

TEST(Verifier, ParseErrorsCarryLineAndColumn)
{
    try {
        parseModule(R"(
func @f() {
entry:
  %a = bogus 1
  ret
}
)");
        FAIL() << "expected a parse error";
    } catch (const Fault &f) {
        const std::string msg = f.what();
        EXPECT_NE(msg.find("IR parse error"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
        EXPECT_NE(msg.find("col"), std::string::npos) << msg;
    }
}

TEST(Verifier, DiagnosticRenderFormat)
{
    Diagnostic d;
    d.severity = DiagSeverity::Error;
    d.code = "fig4-mixed-storep";
    d.message = "bad store";
    d.function = "f";
    d.loc = SrcLoc{12, 3};
    EXPECT_EQ(d.render("m.ir"),
              "m.ir:12:3: error: [fig4-mixed-storep] bad store [@f]");
}

TEST(Verifier, EngineSortsByLocation)
{
    DiagnosticEngine diags;
    diags.warning("b", SrcLoc{9, 1}, "later");
    diags.error("a", SrcLoc{2, 5}, "earlier");
    diags.sortByLocation();
    ASSERT_EQ(diags.all().size(), 2u);
    EXPECT_EQ(diags.all()[0].code, "a");
    EXPECT_EQ(diags.all()[1].code, "b");
    EXPECT_EQ(diags.errorCount(), 1u);
    EXPECT_EQ(diags.warningCount(), 1u);
}
