/** @file Failure-injection tests: the typed faults of Table I and
 * Fig 10 raised from realistic situations — pool exhaustion inside
 * container growth, detach during use, strict storeP violations,
 * heap exhaustion — and that the system stays consistent after. */

#include <gtest/gtest.h>

#include "containers/hash_map.hh"
#include "containers/rb_tree.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 37;
    return cfg;
}

} // namespace

TEST(FailureInjection, PoolExhaustionDuringInsertSurfacesPoolFull)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    // A deliberately tiny pool (minimum size).
    const PoolId pool = rt.createPool("tiny", 16 * 1024);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    RbTree<std::uint64_t, std::uint64_t> tree(env);

    bool filled = false;
    std::uint64_t inserted = 0;
    try {
        for (std::uint64_t i = 0; i < 100000; ++i) {
            tree.insert(i, i);
            ++inserted;
        }
    } catch (const Fault &f) {
        filled = true;
        EXPECT_EQ(f.kind(), FaultKind::PoolFull);
    }
    ASSERT_TRUE(filled);
    EXPECT_GT(inserted, 10u);

    // Freeing space makes the pool usable again; the failed insert
    // left the size counter consistent with reachable nodes.
    std::uint64_t reachable = 0;
    tree.forEach([&](std::uint64_t, std::uint64_t) { ++reachable; });
    EXPECT_EQ(reachable, tree.size());
    for (std::uint64_t i = 0; i < inserted; i += 2)
        tree.erase(i);
    EXPECT_NO_THROW(tree.insert(999999, 1));
}

TEST(FailureInjection, DetachWhileContainerLiveFaultsOnNextAccess)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 8 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    RbTree<std::uint64_t, std::uint64_t> tree(env);
    for (std::uint64_t i = 0; i < 100; ++i)
        tree.insert(i, i);

    rt.pools().detach(pool);
    try {
        (void)tree.find(5);
        FAIL() << "find on a detached pool must fault";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolDetached);
    }

    // Reattach and everything works again (relocated).
    rt.pools().openPool("p");
    EXPECT_EQ(tree.find(5).value(), 5u);
    tree.validate();
}

TEST(FailureInjection, StrictStorePRejectsDramPointerIntoContainer)
{
    for (Version v : {Version::Sw, Version::Hw}) {
        SCOPED_TRACE(versionName(v));
        Runtime::Config cfg = makeConfig(v);
        cfg.strictStoreP = true;
        Runtime rt(cfg);
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("p", 8 << 20);

        struct Node
        {
            Ptr<Node> next;
        };
        MemEnv penv = MemEnv::persistentEnv(rt, pool);
        MemEnv venv = MemEnv::volatileEnv(rt);
        Ptr<Node> pers = penv.alloc<Node>();
        Ptr<Node> vol = venv.alloc<Node>();

        // Persistent -> persistent: fine.
        EXPECT_NO_THROW(pers.setPtrField(&Node::next, pers));
        // Volatile -> persistent location: Table I fault.
        try {
            pers.setPtrField(&Node::next, vol);
            FAIL();
        } catch (const Fault &f) {
            EXPECT_EQ(f.kind(), FaultKind::StorePFault);
        }
        // Persistent -> volatile location: always fine (converted).
        EXPECT_NO_THROW(vol.setPtrField(&Node::next, pers));
    }
}

TEST(FailureInjection, HeapExhaustionThrowsHeapFull)
{
    Runtime rt(makeConfig(Version::Volatile));
    RuntimeScope scope(rt);
    bool threw = false;
    std::vector<SimAddr> blocks;
    try {
        for (int i = 0; i < 1000; ++i)
            blocks.push_back(rt.mallocBytes(64 << 20));
    } catch (const Fault &f) {
        threw = true;
        EXPECT_EQ(f.kind(), FaultKind::HeapFull);
    }
    EXPECT_TRUE(threw);
    // Previously allocated blocks remain usable.
    ASSERT_FALSE(blocks.empty());
    rt.storeData<std::uint64_t>(blocks[0], 7);
    EXPECT_EQ(rt.loadData<std::uint64_t>(blocks[0]), 7u);
}

TEST(FailureInjection, DanglingRelativePointerAfterDestroyFaults)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("gone", 8 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);
    rt.pools().destroy(pool);
    try {
        rt.resolveForAccess(p, 1);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::BadRelativeAddress);
    }
}

TEST(FailureInjection, OffsetPastPoolEndFaults)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 1 << 20);
    // Forge a relative address pointing past the pool end.
    const PtrBits bad = PtrRepr::makeRelative(pool, (1 << 20) + 64);
    try {
        rt.resolveForAccess(bad, 1);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::OffsetOutOfPool);
    }
}

TEST(FailureInjection, HashRehashMidFaultStaysUsable)
{
    // Fill a pool so the rehash's big bucket-array allocation fails,
    // then verify the old table is still intact and queryable.
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 64 * 1024);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    HashMap<std::uint64_t, std::uint64_t> map(env);

    std::uint64_t ok = 0;
    try {
        for (std::uint64_t i = 0; i < 10000; ++i) {
            map.insert(i, i);
            ++ok;
        }
        FAIL() << "expected the pool to fill";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolFull);
    }
    // All successfully inserted keys are still reachable.
    std::uint64_t found = 0;
    for (std::uint64_t i = 0; i < ok; ++i)
        found += map.contains(i) ? 1 : 0;
    EXPECT_EQ(found, ok);
}

TEST(FailureInjection, FaultDuringTxnStillAbortsCleanly)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 256 * 1024);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    RbTree<std::uint64_t, std::uint64_t> tree(env);
    for (std::uint64_t i = 0; i < 20; ++i)
        tree.insert(i, i);

    rt.beginTxn(pool);
    try {
        for (std::uint64_t i = 20; i < 100000; ++i)
            tree.insert(i, i); // will hit PoolFull (or log-full)
        FAIL();
    } catch (const Fault &) {
        rt.abortTxn();
    }
    // Abort restored the pre-txn state despite the mid-txn fault.
    EXPECT_EQ(tree.size(), 20u);
    tree.validate();
    for (std::uint64_t i = 0; i < 20; ++i)
        ASSERT_EQ(tree.find(i).value(), i);
}
