/** @file Variable-size values: trees mapping keys to Ptr<Blob> —
 * possible only because setField dispatches pointer-typed members to
 * storeP semantics automatically. Verifies the stored value pointers
 * are format-canonical and survive relocation. */

#include <gtest/gtest.h>

#include <string>

#include "containers/rb_tree.hh"

using namespace upr;

namespace
{

/** A length-prefixed persistent byte blob. */
struct Blob
{
    std::uint64_t length = 0;
    // bytes follow inline
};

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 91;
    return cfg;
}

/** Allocate a blob holding @p text. */
Ptr<Blob>
makeBlob(MemEnv &env, const std::string &text)
{
    Runtime &rt = env.runtime();
    Ptr<Blob> b = Ptr<Blob>::fromBits(
        env.persistent()
            ? rt.pmallocBits(env.pool(), sizeof(Blob) + text.size())
            : PtrRepr::fromVa(
                  rt.mallocBytes(sizeof(Blob) + text.size())));
    b.setField(&Blob::length, std::uint64_t(text.size()));
    rt.storeBytes(b.resolve() + sizeof(Blob), text.data(),
                  text.size());
    return b;
}

std::string
readBlob(Runtime &rt, Ptr<Blob> b)
{
    const std::uint64_t len = b.field(&Blob::length);
    std::string out(len, '\0');
    rt.loadBytes(b.resolve() + sizeof(Blob), out.data(), len);
    return out;
}

} // namespace

class BlobValues : public ::testing::TestWithParam<Version>
{
};

TEST_P(BlobValues, TreeOfBlobPointers)
{
    Runtime rt(makeConfig(GetParam()));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("b", 32 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);

    RbTree<std::uint64_t, Ptr<Blob>> tree(env);
    for (std::uint64_t i = 0; i < 100; ++i) {
        tree.insert(i, makeBlob(env, "value-" + std::to_string(i) +
                                         std::string(i % 40, 'x')));
    }
    tree.validate();
    for (std::uint64_t i = 0; i < 100; ++i) {
        auto b = tree.find(i);
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(readBlob(rt, *b),
                  "value-" + std::to_string(i) +
                      std::string(i % 40, 'x'));
    }
}

TEST_P(BlobValues, StoredValuePointersAreCanonical)
{
    if (GetParam() == Version::Volatile ||
        GetParam() == Version::Explicit) {
        GTEST_SKIP();
    }
    Runtime rt(makeConfig(GetParam()));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("b", 16 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);

    RbTree<std::uint64_t, Ptr<Blob>> tree(env);
    Ptr<Blob> blob = makeBlob(env, "hello");
    // Insert the blob through its *virtual-address* form: the tree's
    // setField must still store it relative (storeP dispatch).
    Ptr<Blob> va_form = Ptr<Blob>::fromBits(
        PtrRepr::fromVa(blob.resolve()));
    tree.insert(7, va_form);

    // Find the node and inspect the raw stored bits of the value.
    auto found = tree.find(7);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(PtrRepr::determineY(found->bits()), PtrForm::Relative);
    EXPECT_EQ(readBlob(rt, *found), "hello");
}

TEST_P(BlobValues, BlobGraphSurvivesRelocation)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    Runtime rt(makeConfig(GetParam()));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("b", 32 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);

    using Tree = RbTree<std::uint64_t, Ptr<Blob>>;
    Tree tree(env);
    for (std::uint64_t i = 0; i < 50; ++i)
        tree.insert(i, makeBlob(env, "blob#" + std::to_string(i)));
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(tree.header().bits()));

    rt.pools().detach(pool);
    rt.pools().openPool("b");

    Tree reopened(env, Ptr<Tree::Header>::fromBits(
                           PtrRepr::makeRelative(
                               pool, rt.pools().pool(pool).rootOff())));
    reopened.validate();
    for (std::uint64_t i = 0; i < 50; ++i) {
        auto b = reopened.find(i);
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(readBlob(rt, *b), "blob#" + std::to_string(i));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, BlobValues,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });
