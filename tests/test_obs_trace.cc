/** @file Unit tests for the TraceRing event buffer: disabled
 * emission is a no-op, wraparound retains exactly the newest
 * kCapacity events, and both exporters emit parseable output. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/json_value.hh"
#include "obs/trace_ring.hh"

using namespace upr::obs;

namespace
{

/** Save/restore the process-wide trace gate around each test. */
class TraceGate : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        was_ = traceEnabled();
        traceRing().clear();
    }

    void TearDown() override
    {
        setTraceEnabled(was_);
        traceRing().clear();
    }

  private:
    bool was_ = false;
};

} // namespace

TEST_F(TraceGate, DisabledEmissionIsANoOp)
{
    setTraceEnabled(false);
    traceEvent(EventKind::PoolOpen, 1, 2);
    traceEvent(EventKind::TxnCommit, 3, 4);
    EXPECT_EQ(traceRing().appended(), 0u);
    EXPECT_TRUE(traceRing().snapshot().empty());
}

TEST_F(TraceGate, EnabledEmissionAppendsStructuredEvents)
{
    setTraceEnabled(true);
    traceEvent(EventKind::PoolAdopt, 7, 1);
    traceEvent(EventKind::UndoTruncate, 7, 4096);

    const std::vector<TraceRingEvent> evs = traceRing().snapshot();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].seq, 0u);
    EXPECT_EQ(evs[0].kind, EventKind::PoolAdopt);
    EXPECT_EQ(evs[0].a, 7u);
    EXPECT_EQ(evs[0].b, 1u);
    EXPECT_EQ(evs[1].seq, 1u);
    EXPECT_EQ(evs[1].kind, EventKind::UndoTruncate);
    EXPECT_EQ(evs[1].b, 4096u);
    EXPECT_EQ(traceRing().dropped(), 0u);
}

TEST(TraceRing, WraparoundKeepsNewestCapacityEvents)
{
    TraceRing ring;
    const std::uint64_t n = TraceRing::kCapacity + 123;
    for (std::uint64_t i = 0; i < n; ++i)
        ring.append(EventKind::CrashPoint, i, 0);

    EXPECT_EQ(ring.appended(), n);
    EXPECT_EQ(ring.dropped(), 123u);

    const std::vector<TraceRingEvent> evs = ring.snapshot();
    ASSERT_EQ(evs.size(), TraceRing::kCapacity);
    EXPECT_EQ(evs.front().seq, 123u);
    EXPECT_EQ(evs.back().seq, n - 1);
    // Oldest-first, and the payload tracks the sequence number.
    for (std::size_t i = 0; i < evs.size(); ++i) {
        ASSERT_EQ(evs[i].seq, 123u + i);
        ASSERT_EQ(evs[i].a, 123u + i);
    }
}

TEST(TraceRing, NothingDroppedBelowCapacity)
{
    TraceRing ring;
    for (int i = 0; i < 5; ++i)
        ring.append(EventKind::TxnBegin, 1, 0);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.snapshot().size(), 5u);
}

TEST(TraceRing, ClearForgetsEverything)
{
    TraceRing ring;
    ring.append(EventKind::FaultRaised, 2, 0);
    ring.clear();
    EXPECT_EQ(ring.appended(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, KindNamesAreStableIdentifiers)
{
    EXPECT_STREQ(eventKindName(EventKind::FaultRaised),
                 "fault-raised");
    EXPECT_STREQ(eventKindName(EventKind::RecoveryApplied),
                 "recovery-applied");
    EXPECT_STREQ(eventKindName(EventKind::PoolAttach), "pool-attach");
    EXPECT_STREQ(eventKindName(EventKind::PoolDetach), "pool-detach");
    EXPECT_STREQ(eventKindName(EventKind::PoolAdopt), "pool-adopt");
    EXPECT_STREQ(eventKindName(EventKind::PoolOpen), "pool-open");
    EXPECT_STREQ(eventKindName(EventKind::UndoTruncate),
                 "undo-truncate");
    EXPECT_STREQ(eventKindName(EventKind::TxnBegin), "txn-begin");
    EXPECT_STREQ(eventKindName(EventKind::TxnCommit), "txn-commit");
    EXPECT_STREQ(eventKindName(EventKind::TxnAbort), "txn-abort");
    EXPECT_STREQ(eventKindName(EventKind::CrashPoint), "crash-point");
    EXPECT_STREQ(eventKindName(EventKind::ElisionDecision),
                 "elision-decision");
}

TEST(TraceRing, JsonlExportIsOneParseableObjectPerEvent)
{
    TraceRing ring;
    ring.append(EventKind::PoolOpen, 1, 0);
    ring.append(EventKind::TxnCommit, 1, 9);
    ring.append(EventKind::TxnAbort, 2, 0);

    std::ostringstream os;
    ring.exportJsonl(os);
    std::istringstream in(os.str());
    std::string line;
    std::vector<std::string> kinds;
    while (std::getline(in, line)) {
        const JsonValue obj = parseJson(line);
        ASSERT_TRUE(obj.isObject());
        ASSERT_NE(obj.find("seq"), nullptr);
        kinds.push_back(obj.find("kind")->asString());
    }
    ASSERT_EQ(kinds.size(), 3u);
    EXPECT_EQ(kinds[0], "pool-open");
    EXPECT_EQ(kinds[1], "txn-commit");
    EXPECT_EQ(kinds[2], "txn-abort");
}

TEST(TraceRing, ChromeTraceExportParsesWithSeqAsTimestamp)
{
    TraceRing ring;
    ring.append(EventKind::ElisionDecision, 42, 1);
    ring.append(EventKind::ElisionDecision, 43, 0);

    std::ostringstream os;
    ring.exportChromeTrace(os);
    const JsonValue doc = parseJson(os.str());
    const JsonValue *evs = doc.find("traceEvents");
    ASSERT_NE(evs, nullptr);
    ASSERT_TRUE(evs->isArray());
    ASSERT_EQ(evs->items().size(), 2u);

    const JsonValue &first = evs->items()[0];
    EXPECT_EQ(first.find("name")->asString(), "elision-decision");
    EXPECT_EQ(first.find("ts")->asUint(), 0u);
    EXPECT_EQ(first.find("args")->find("a")->asUint(), 42u);
    const JsonValue &second = evs->items()[1];
    EXPECT_EQ(second.find("ts")->asUint(), 1u);
    EXPECT_EQ(second.find("args")->find("b")->asUint(), 0u);
}

TEST(TraceRing, ChromeTraceOfEmptyRingIsValidJson)
{
    TraceRing ring;
    std::ostringstream os;
    ring.exportChromeTrace(os);
    const JsonValue doc = parseJson(os.str());
    const JsonValue *evs = doc.find("traceEvents");
    ASSERT_NE(evs, nullptr);
    EXPECT_TRUE(evs->items().empty());
}
