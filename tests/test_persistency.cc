/** @file Unit tests for the persistency-ordering abstract interpreter
 * (analysis/persistency.hh): the transactional-state lattice, the
 * must-set joins and loop kills, every persist-* diagnostic, and the
 * exact LogMode each store's plan ends up carrying. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/analysis/abstract_interp.hh"
#include "compiler/analysis/persistency.hh"
#include "compiler/check_insertion.hh"
#include "compiler/ir_parser.hh"
#include "compiler/type_inference.hh"

using namespace upr;

namespace
{

struct Out
{
    ir::Module mod;
    CheckPlan plan;
    PersistencyResult res;
};

Out
analyze(const char *src)
{
    Out o;
    o.mod = ir::parseModule(src);
    const InferenceResult inf = inferPointerKinds(o.mod, true);
    FlowAnalysis flow(o.mod, inf);
    o.plan = insertChecks(o.mod, &inf);
    o.res = analyzePersistency(o.mod, flow, &o.plan);
    return o;
}

/** LogModes of every store/storep in @p fn, in program order. */
std::vector<LogMode>
storeModes(const Out &o, const std::string &fn)
{
    std::vector<LogMode> v;
    const ir::Function &f = o.mod.get(fn);
    const FunctionPlan &p = o.plan.perFunction.at(fn);
    for (std::size_t b = 0; b < f.blocks.size(); ++b) {
        for (std::size_t i = 0; i < f.blocks[b].insts.size(); ++i) {
            const ir::Op op = f.blocks[b].insts[i].op;
            if (op == ir::Op::Store || op == ir::Op::StoreP)
                v.push_back(p.at(static_cast<ir::BlockId>(b), i)
                                .logMode);
        }
    }
    return v;
}

bool
hasCode(const PersistencyResult &r, const std::string &code)
{
    for (const Diagnostic &d : r.diags.all())
        if (d.code == code)
            return true;
    return false;
}

} // namespace

TEST(Persistency, FreshAllocStoresElide)
{
    const Out o = analyze(R"(
func @f(%v: i64) -> ptr {
entry:
  txbegin 0
  %p = pmalloc 16
  store %v, %p
  %q = gep %p, 8
  store %v, %q
  txcommit
  ret %p
}
)");
    EXPECT_EQ(o.res.diags.errorCount(), 0u) << o.res.diags.render();
    EXPECT_EQ(o.res.txStores, 2u);
    EXPECT_EQ(o.res.elidedFresh, 2u);
    EXPECT_EQ(o.res.logElided, 2u);
    EXPECT_EQ(storeModes(o, "f"),
              (std::vector<LogMode>{LogMode::ElideFreshAlloc,
                                    LogMode::ElideFreshAlloc}));
}

TEST(Persistency, DominatedRepeatElidesButDistinctOffsetDoesNot)
{
    // %p outlives its allocating transaction (allocated before
    // txbegin), so the first store must log; the exact repeat is
    // dominated by it, while the +8 neighbour is a different location.
    const Out o = analyze(R"(
func @f(%v: i64) {
entry:
  %p = pmalloc 16
  txbegin 0
  store %v, %p
  store %v, %p
  %q = gep %p, 8
  store %v, %q
  txcommit
  ret
}
)");
    EXPECT_EQ(o.res.diags.errorCount(), 0u) << o.res.diags.render();
    EXPECT_EQ(o.res.txStores, 3u);
    EXPECT_EQ(o.res.elidedDominated, 1u);
    EXPECT_EQ(o.res.elidedFresh, 0u);
    EXPECT_EQ(storeModes(o, "f"),
              (std::vector<LogMode>{LogMode::MustLog,
                                    LogMode::ElideDominatedWrite,
                                    LogMode::MustLog}));
}

TEST(Persistency, JoinIntersectsTheLoggedSet)
{
    // Logged on one arm only: the join forgets it. Logged on both
    // arms: the join keeps it and the post-join store elides.
    const Out one = analyze(R"(
func @onearm(%v: i64, %c: i64) {
entry:
  %p = pmalloc 16
  txbegin 0
  br %c, yes, join
yes:
  store %v, %p
  jmp join
join:
  store %v, %p
  txcommit
  ret
}
)");
    EXPECT_EQ(one.res.diags.errorCount(), 0u);
    EXPECT_EQ(storeModes(one, "onearm"),
              (std::vector<LogMode>{LogMode::MustLog,
                                    LogMode::MustLog}));

    const Out both = analyze(R"(
func @botharms(%v: i64, %c: i64) {
entry:
  %p = pmalloc 16
  txbegin 0
  br %c, yes, no
yes:
  store %v, %p
  jmp join
no:
  store %v, %p
  jmp join
join:
  store %v, %p
  txcommit
  ret
}
)");
    EXPECT_EQ(both.res.diags.errorCount(), 0u);
    EXPECT_EQ(storeModes(both, "botharms"),
              (std::vector<LogMode>{LogMode::MustLog, LogMode::MustLog,
                                    LogMode::ElideDominatedWrite}));
}

TEST(Persistency, LoopHeaderKillsFactsBornInsideTheLoop)
{
    // The store to the pre-loop %p logs on every iteration: its
    // "already logged" fact from iteration N dies at the header join
    // with the loop-entry edge. The in-loop pmalloc's store still
    // elides — kill-on-entry drops the *previous* incarnation of %q,
    // and this iteration's pmalloc re-establishes freshness before
    // the store.
    const Out o = analyze(R"(
func @loop(%v: i64, %n: i64) {
entry:
  %p = pmalloc 16
  txbegin 0
  %zero = const 0
  jmp head
head:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %cont = lt %i, %n
  br %cont, body, exit
body:
  store %v, %p
  %q = pmalloc 16
  store %v, %q
  %one = const 1
  %inext = add %i, %one
  jmp head
exit:
  txcommit
  ret
}
)");
    EXPECT_EQ(o.res.diags.errorCount(), 0u) << o.res.diags.render();
    EXPECT_EQ(storeModes(o, "loop"),
              (std::vector<LogMode>{LogMode::MustLog,
                                    LogMode::ElideFreshAlloc}));
}

TEST(Persistency, CallsClearTheMustSets)
{
    // Any call may write (or free) memory the facts describe: after
    // it, nothing is provably fresh or logged anymore.
    const Out o = analyze(R"(
func @sink(%p: ptr) {
entry:
  ret
}

func @f(%v: i64) {
entry:
  txbegin 0
  %p = pmalloc 16
  store %v, %p
  call @sink(%p)
  store %v, %p
  txcommit
  ret
}
)");
    EXPECT_EQ(o.res.diags.errorCount(), 0u) << o.res.diags.render();
    EXPECT_EQ(storeModes(o, "f"),
              (std::vector<LogMode>{LogMode::ElideFreshAlloc,
                                    LogMode::MustLog}));
}

TEST(Persistency, TxUsingCalleePoisonsTheState)
{
    // @helper reaches tx opcodes, so the caller's transactional state
    // after the call is unknowable: no diagnostics (even though the
    // following store might run outside any transaction) and no
    // proofs downstream.
    const Out o = analyze(R"(
func @helper() {
entry:
  txbegin 0
  txcommit
  ret
}

func @f(%v: i64) {
entry:
  txbegin 0
  %p = pmalloc 16
  call @helper()
  store %v, %p
  txcommit
  ret
}
)");
    EXPECT_EQ(o.res.diags.errorCount(), 0u) << o.res.diags.render();
    EXPECT_EQ(o.res.diags.warningCount(), 0u);
    EXPECT_EQ(o.res.txStores, 0u); // not even counted: state unknown
    EXPECT_EQ(storeModes(o, "f"),
              (std::vector<LogMode>{LogMode::MustLog}));
}

TEST(Persistency, DoubleTxBeginDiagnosed)
{
    const Out o = analyze(R"(
func @f() {
entry:
  txbegin 0
  txbegin 0
  txcommit
  ret
}
)");
    EXPECT_TRUE(hasCode(o.res, "persist-double-txbegin"))
        << o.res.diags.render();
}

TEST(Persistency, UnbalancedCommitAndReturnDiagnosed)
{
    const Out commit = analyze(R"(
func @f() {
entry:
  txcommit
  ret
}
)");
    EXPECT_TRUE(hasCode(commit.res, "persist-unbalanced-txn"));

    const Out ret = analyze(R"(
func @f() {
entry:
  txbegin 0
  ret
}
)");
    EXPECT_TRUE(hasCode(ret.res, "persist-unbalanced-txn"));
}

TEST(Persistency, StoreOutsideTxnAndOnSomePathsDiagnosed)
{
    const Out plain = analyze(R"(
func @f(%v: i64) {
entry:
  %p = pmalloc 16
  store %v, %p
  txbegin 0
  txcommit
  ret
}
)");
    EXPECT_TRUE(hasCode(plain.res, "persist-store-outside-txn"));

    // Covered on one path only: the join is Conflict, and both the
    // store and the commit report it.
    const Out conflict = analyze(R"(
func @f(%v: i64, %c: i64) {
entry:
  %p = pmalloc 16
  br %c, yes, join
yes:
  txbegin 0
  jmp join
join:
  store %v, %p
  txcommit
  ret
}
)");
    EXPECT_TRUE(hasCode(conflict.res, "persist-store-outside-txn"));
    EXPECT_TRUE(hasCode(conflict.res, "persist-unbalanced-txn"));
}

TEST(Persistency, CrossPoolWriteDiagnosed)
{
    const Out o = analyze(R"(
func @f(%v: i64) {
entry:
  txbegin 1
  %p = pmalloc 16
  store %v, %p
  txcommit
  ret
}
)");
    EXPECT_TRUE(hasCode(o.res, "persist-cross-pool-write"))
        << o.res.diags.render();
}

TEST(Persistency, CommitUnreachableWarnsButStillProves)
{
    // Always-aborting transactions are suspicious (the store's effects
    // can never become durable) but not unsound: a warning, and the
    // fresh-alloc proof still applies.
    const Out o = analyze(R"(
func @f(%v: i64) {
entry:
  txbegin 0
  %p = pmalloc 16
  store %v, %p
  txabort
  ret
}
)");
    EXPECT_EQ(o.res.diags.errorCount(), 0u) << o.res.diags.render();
    EXPECT_TRUE(hasCode(o.res, "persist-commit-unreachable"));
    EXPECT_EQ(o.res.diags.warningCount(), 1u);
    EXPECT_EQ(storeModes(o, "f"),
              (std::vector<LogMode>{LogMode::ElideFreshAlloc}));
}

TEST(Persistency, ErrorsSuppressProofsInTheFunction)
{
    // The fresh store would elide, but the function has a persistency
    // error: trusting the analysis's own model of a buggy function to
    // thin the log would be reckless. Everything stays MustLog.
    const Out o = analyze(R"(
func @f(%v: i64) {
entry:
  txbegin 0
  %p = pmalloc 16
  store %v, %p
  txcommit
  txcommit
  ret
}
)");
    EXPECT_GT(o.res.diags.errorCount(), 0u);
    EXPECT_EQ(o.res.logElided, 0u);
    EXPECT_EQ(storeModes(o, "f"),
              (std::vector<LogMode>{LogMode::MustLog}));
}

TEST(Persistency, NonTransactionalModuleStaysQuiet)
{
    // The paper's subject: the legacy library just stores; only the
    // application owns transactions. A module (or function) with no
    // tx opcodes gets no persist-* diagnostics at all.
    const Out o = analyze(R"(
func @lib(%v: i64) -> ptr {
entry:
  %p = pmalloc 16
  store %v, %p
  ret %p
}
)");
    EXPECT_FALSE(moduleUsesTx(o.mod));
    EXPECT_EQ(o.res.findingCount(), 0u) << o.res.diags.render();
    EXPECT_EQ(storeModes(o, "lib"),
              (std::vector<LogMode>{LogMode::MustLog}));
}
