/** @file Exhaustive Fig 4 property suite.
 *
 * A randomized program over the full set of C11 pointer operations
 * (allocation, field load/store, pointer store, arithmetic, indexing,
 * comparison, casts) executes simultaneously against
 *   (a) a host-memory oracle using real C++ pointers, and
 *   (b) the simulated runtime under a given version,
 * with mixed volatile and persistent objects. Every observable value
 * must match the oracle at every step — the property form of the
 * paper's "returned value of every operation ... is consistent with
 * the ISO C11 standard" claim.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.hh"
#include "containers/memory_env.hh"

using namespace upr;

namespace
{

struct Cell
{
    Ptr<Cell> link;
    std::uint64_t value = 0;
};

/** Host-side mirror of one simulated Cell array. */
struct HostObj
{
    std::vector<std::uint64_t> values; //!< per-element value field
    std::vector<int> links;            //!< per-element link target
                                       //!< (object index, -1 = null)
};

Runtime::Config
makeConfig(Version v, std::uint64_t seed)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = seed;
    return cfg;
}

/** One simulated object: base pointer + element count + identity. */
struct SimObj
{
    Ptr<Cell> base;
    std::size_t count;
    bool persistent;
};

class Fig4Property : public ::testing::TestWithParam<Version>
{
};

} // namespace

TEST_P(Fig4Property, RandomProgramMatchesHostOracle)
{
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        Runtime rt(makeConfig(GetParam(), seed));
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("fig4", 64 << 20);
        MemEnv penv = MemEnv::persistentEnv(rt, pool);
        MemEnv venv = MemEnv::volatileEnv(rt);

        Rng rng(seed * 7919);
        std::vector<SimObj> sim;
        std::vector<HostObj> host;

        // Object index referenced by (obj, elem) in the oracle; the
        // simulated side stores actual Ptr bits. To compare links we
        // resolve a loaded link back to (obj, elem) by scanning.
        auto findTarget = [&](Ptr<Cell> p) -> std::pair<int, int> {
            if (p.isNull())
                return {-1, -1};
            for (std::size_t o = 0; o < sim.size(); ++o) {
                for (std::size_t e = 0; e < sim[o].count; ++e) {
                    Ptr<Cell> cand =
                        sim[o].base + static_cast<std::ptrdiff_t>(e);
                    if (cand == p)
                        return {static_cast<int>(o),
                                static_cast<int>(e)};
                }
            }
            return {-2, -2}; // dangling: must never happen
        };

        // Seed with a handful of objects.
        auto newObject = [&] {
            const std::size_t count = 1 + rng.nextBounded(6);
            const bool pers = rng.nextBounded(2) == 0;
            MemEnv &env = pers ? penv : venv;
            sim.push_back(
                {env.allocArray<Cell>(count), count, pers});
            host.push_back(
                {std::vector<std::uint64_t>(count, 0),
                 std::vector<int>(count, -1)});
        };
        for (int i = 0; i < 4; ++i)
            newObject();

        auto randomElem = [&]() -> std::pair<std::size_t, std::size_t> {
            const std::size_t o = rng.nextBounded(sim.size());
            return {o, rng.nextBounded(sim[o].count)};
        };

        for (int step = 0; step < 1200; ++step) {
            switch (rng.nextBounded(9)) {
              case 0: { // allocate another object
                if (sim.size() < 16)
                    newObject();
                break;
              }
              case 1: { // value store through p[i].value
                auto [o, e] = randomElem();
                const std::uint64_t v = rng.next();
                (sim[o].base + static_cast<std::ptrdiff_t>(e))
                    .setField(&Cell::value, v);
                host[o].values[e] = v;
                break;
              }
              case 2: { // value load must match oracle
                auto [o, e] = randomElem();
                const std::uint64_t got =
                    (sim[o].base + static_cast<std::ptrdiff_t>(e))
                        .field(&Cell::value);
                ASSERT_EQ(got, host[o].values[e])
                    << "step " << step;
                break;
              }
              case 3: { // pointer store (maybe cross-media)
                auto [o, e] = randomElem();
                auto [to, te] = randomElem();
                Ptr<Cell> target =
                    sim[to].base + static_cast<std::ptrdiff_t>(te);
                (sim[o].base + static_cast<std::ptrdiff_t>(e))
                    .setPtrField(&Cell::link, target);
                host[o].links[e] =
                    static_cast<int>(to * 100 + te);
                break;
              }
              case 4: { // null pointer store
                auto [o, e] = randomElem();
                (sim[o].base + static_cast<std::ptrdiff_t>(e))
                    .setPtrField(&Cell::link, Ptr<Cell>::null());
                host[o].links[e] = -1;
                break;
              }
              case 5: { // pointer load + identity check vs oracle
                auto [o, e] = randomElem();
                Ptr<Cell> got =
                    (sim[o].base + static_cast<std::ptrdiff_t>(e))
                        .ptrField(&Cell::link);
                auto [fo, fe] = findTarget(got);
                if (host[o].links[e] == -1) {
                    ASSERT_EQ(fo, -1) << "step " << step;
                } else {
                    ASSERT_EQ(fo * 100 + fe, host[o].links[e])
                        << "step " << step;
                }
                break;
              }
              case 6: { // arithmetic + difference round trip
                auto [o, e] = randomElem();
                Ptr<Cell> base = sim[o].base;
                Ptr<Cell> p =
                    base + static_cast<std::ptrdiff_t>(e);
                ASSERT_EQ(p - base, static_cast<std::ptrdiff_t>(e));
                ASSERT_TRUE((p - static_cast<std::ptrdiff_t>(e)) ==
                            base);
                if (e > 0) {
                    ASSERT_TRUE(base < p);
                }
                break;
              }
              case 7: { // comparisons across objects
                auto [o1, e1] = randomElem();
                auto [o2, e2] = randomElem();
                Ptr<Cell> p =
                    sim[o1].base + static_cast<std::ptrdiff_t>(e1);
                Ptr<Cell> q =
                    sim[o2].base + static_cast<std::ptrdiff_t>(e2);
                const bool same = (o1 == o2 && e1 == e2);
                ASSERT_EQ(p == q, same) << "step " << step;
                ASSERT_EQ(p != q, !same) << "step " << step;
                break;
              }
              case 8: { // (I)p / (T*)i cast round trip + deref
                auto [o, e] = randomElem();
                Ptr<Cell> p =
                    sim[o].base + static_cast<std::ptrdiff_t>(e);
                const std::uint64_t i = p.toInt();
                Ptr<Cell> back = Ptr<Cell>::fromBits(
                    currentRuntime().intToPtr(i));
                ASSERT_EQ(back.field(&Cell::value),
                          host[o].values[e])
                    << "step " << step;
                break;
              }
            }
        }

        // Final sweep: every field of every object matches.
        for (std::size_t o = 0; o < sim.size(); ++o) {
            for (std::size_t e = 0; e < sim[o].count; ++e) {
                Ptr<Cell> p =
                    sim[o].base + static_cast<std::ptrdiff_t>(e);
                ASSERT_EQ(p.field(&Cell::value), host[o].values[e]);
            }
        }
    }
}

TEST_P(Fig4Property, SurvivesRelocationMidProgram)
{
    Runtime rt(makeConfig(GetParam(), 99));
    RuntimeScope scope(rt);
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();

    const PoolId pool = rt.createPool("fig4", 16 << 20);
    MemEnv penv = MemEnv::persistentEnv(rt, pool);

    // A persistent chain built before relocation...
    Ptr<Cell> a = penv.alloc<Cell>();
    Ptr<Cell> b = penv.alloc<Cell>();
    a.setPtrField(&Cell::link, b);
    b.setField(&Cell::value, std::uint64_t{0xCAFE});

    rt.pools().detach(pool);
    rt.pools().openPool("fig4");

    // ...still traverses, compares, and casts correctly after.
    Ptr<Cell> loaded = a.ptrField(&Cell::link);
    EXPECT_TRUE(loaded == b);
    EXPECT_EQ(loaded.field(&Cell::value), 0xCAFEu);
    const std::uint64_t i = loaded.toInt();
    EXPECT_EQ(i, loaded.resolve());
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, Fig4Property,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });
