/** @file Unit tests for the VALB (VA -> pool-ID range buffer) model. */

#include <gtest/gtest.h>

#include "arch/valb.hh"

using namespace upr;

class ValbTest : public ::testing::Test
{
  protected:
    ValbTest() : mgr(space, Placement::Sequential), valb(params, mgr)
    {
        pool = mgr.createPool("p", 1 << 20);
        base = mgr.baseOf(pool);
    }

    MachineParams params;
    AddressSpace space;
    PoolManager mgr;
    Valb valb;
    PoolId pool;
    SimAddr base;
};

TEST_F(ValbTest, MissWalksThenRangeHits)
{
    const Va2RaResult miss = valb.va2ra(base + 0x500);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.latency, params.valbHitLatency + params.vawLatency);
    EXPECT_EQ(miss.id, pool);
    EXPECT_EQ(miss.offset, 0x500u);

    // Any address in the same pool range now hits.
    const Va2RaResult hit = valb.va2ra(base + 0xFFFFF);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latency, params.valbHitLatency);
    EXPECT_EQ(hit.offset, 0xFFFFFu);
}

TEST_F(ValbTest, VaOutsideAnyPoolFaults)
{
    try {
        valb.va2ra(Layout::kNvmBase + 5);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::UnmappedAccess);
    }
}

TEST_F(ValbTest, VatbTracksAttachEpochs)
{
    valb.va2ra(base); // builds the VATB
    EXPECT_EQ(valb.vatb().size(), 1u);
    mgr.createPool("q", 1 << 18);
    valb.va2ra(base); // epoch sync rebuilds
    EXPECT_EQ(valb.vatb().size(), 2u);
    mgr.detach(pool);
    const PoolId q = mgr.va2ra(mgr.baseOf(2)).first;
    (void)q;
    valb.va2ra(mgr.baseOf(2));
    EXPECT_EQ(valb.vatb().size(), 1u);
}

TEST_F(ValbTest, DetachedPoolVaFaults)
{
    valb.va2ra(base);
    mgr.detach(pool);
    EXPECT_THROW(valb.va2ra(base), Fault);
}

TEST_F(ValbTest, RelocatedPoolTranslatesAtNewRange)
{
    valb.va2ra(base);
    mgr.detach(pool);
    mgr.openPool("p");
    const SimAddr base2 = mgr.baseOf(pool);
    ASSERT_NE(base, base2);
    const Va2RaResult r = valb.va2ra(base2 + 0x30);
    EXPECT_EQ(r.id, pool);
    EXPECT_EQ(r.offset, 0x30u);
}

TEST_F(ValbTest, TwoPoolsDistinctIds)
{
    const PoolId q = mgr.createPool("q", 1 << 18);
    const SimAddr qbase = mgr.baseOf(q);
    EXPECT_EQ(valb.va2ra(base + 1).id, pool);
    EXPECT_EQ(valb.va2ra(qbase + 1).id, q);
}

TEST_F(ValbTest, StatsAccumulate)
{
    valb.va2ra(base);
    valb.va2ra(base + 64);
    EXPECT_EQ(valb.accesses(), 2u);
    EXPECT_EQ(valb.walkCount(), 1u);
    EXPECT_EQ(valb.stats().lookup("hits"), 1u);
}
