/** @file The migration-burden contrast made testable: the explicit
 * port of the linked list behaves identically to the transparent
 * list, but required a complete rewrite — while the transparent list
 * runs on NVM unchanged. */

#include <gtest/gtest.h>

#include "containers/explicit_api.hh"
#include "containers/linked_list.hh"

using namespace upr;
using explicit_model::ExplicitList;
using explicit_model::PmemApi;

namespace
{

struct Value16
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
};

Runtime::Config
explicitConfig()
{
    Runtime::Config cfg;
    cfg.version = Version::Explicit;
    cfg.seed = 3;
    return cfg;
}

} // namespace

TEST(ExplicitContrast, SameBehaviourDifferentCode)
{
    // The explicit-model list under the Explicit version...
    Runtime ert(explicitConfig());
    RuntimeScope escope(ert);
    const PoolId epool = ert.createPool("e", 8 << 20);
    PmemApi api(ert, epool);
    ExplicitList elist(api);

    // ...and the transparent list under the HW version.
    Runtime::Config hcfg;
    hcfg.version = Version::Hw;
    hcfg.seed = 3;
    Runtime hrt(hcfg);
    RuntimeScope hscope(hrt);
    const PoolId hpool = hrt.createPool("h", 8 << 20);
    LinkedList<Value16> tlist(MemEnv::persistentEnv(hrt, hpool));

    for (std::uint64_t i = 0; i < 200; ++i) {
        elist.pushBack(i, i * 2);
        tlist.pushBack({i, i * 2});
    }
    // Erase the same elements from both.
    for (int k = 0; k < 50; ++k) {
        elist.erase(elist.front());
        tlist.erase(tlist.front());
    }
    ASSERT_EQ(elist.size(), tlist.size());

    std::uint64_t esum = 0, tsum = 0;
    elist.forEach([&](std::uint64_t lo, std::uint64_t hi) {
        esum += lo * 3 + hi;
    });
    tlist.forEach([&](const Value16 &v) { tsum += v.lo * 3 + v.hi; });
    EXPECT_EQ(esum, tsum);
    tlist.validate();
}

TEST(ExplicitContrast, ExplicitTranslatesEveryAccess)
{
    Runtime rt(explicitConfig());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("e", 8 << 20);
    PmemApi api(rt, pool);
    ExplicitList list(api);
    for (std::uint64_t i = 0; i < 100; ++i)
        list.pushBack(i, i);

    rt.resetCounters();
    std::uint64_t sum = 0;
    list.forEach([&](std::uint64_t lo, std::uint64_t) { sum += lo; });
    EXPECT_EQ(sum, 4950u);
    // Traversal of 100 nodes reads next+lo+hi per node, each through
    // its own direct() translation: >= 3 per node, no reuse.
    EXPECT_GE(rt.relToAbs(), 300u);
}

TEST(ExplicitContrast, HandlesAreNotPointers)
{
    // The type-level point: PObj cannot be mixed with Ptr or raw
    // addresses; the explicit model partitions the type system.
    using N = ExplicitList::Node;
    static_assert(!std::is_convertible_v<explicit_model::PObj<N>,
                                         Ptr<N>>);
    static_assert(!std::is_convertible_v<Ptr<N>,
                                         explicit_model::PObj<N>>);
    static_assert(!std::is_convertible_v<explicit_model::PObj<N>,
                                         SimAddr>);
    SUCCEED();
}

TEST(ExplicitContrast, ExplicitListSurvivesRelocationToo)
{
    // Fairness check: the explicit model also supports relocation
    // (that is not the difference — the difference is the code).
    Runtime rt(explicitConfig());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("e", 8 << 20);
    PmemApi api(rt, pool);
    ExplicitList list(api);
    for (std::uint64_t i = 0; i < 50; ++i)
        list.pushBack(i, ~i);
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(list.header().oid));

    rt.pools().detach(pool);
    rt.pools().openPool("e");

    ExplicitList reopened(
        api, explicit_model::PObj<ExplicitList::Header>{
                 PtrRepr::makeRelative(
                     pool, rt.pools().pool(pool).rootOff())});
    EXPECT_EQ(reopened.size(), 50u);
    std::uint64_t i = 0;
    reopened.forEach([&](std::uint64_t lo, std::uint64_t hi) {
        EXPECT_EQ(lo, i);
        EXPECT_EQ(hi, ~i);
        ++i;
    });
}
