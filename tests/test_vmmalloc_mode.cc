/** @file Tests for libvmmalloc mode (Sec VII-B): the default
 * allocator transparently persists the whole heap; unmodified code —
 * containers included — runs with every allocation on NVM. */

#include <gtest/gtest.h>

#include "containers/rb_tree.hh"
#include "kvstore/kv_store.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v, bool persist_heap)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 71;
    cfg.persistHeap = persist_heap;
    cfg.persistHeapPoolSize = 64 << 20;
    return cfg;
}

} // namespace

class VmmallocMode : public ::testing::TestWithParam<Version>
{
};

TEST_P(VmmallocMode, MallocReturnsNvmAddresses)
{
    Runtime rt(makeConfig(GetParam(), true));
    RuntimeScope scope(rt);
    const SimAddr p = rt.mallocBytes(64);
    if (GetParam() == Version::Volatile) {
        EXPECT_FALSE(Layout::isNvm(p)); // mode is a no-op without NVM
    } else {
        EXPECT_TRUE(Layout::isNvm(p));
        EXPECT_NE(rt.vmmallocPool(), 0u);
    }
    rt.storeData<std::uint64_t>(p, 0x77);
    EXPECT_EQ(rt.loadData<std::uint64_t>(p), 0x77u);
    rt.freeBytes(p);
}

TEST_P(VmmallocMode, VolatileEnvContainersLandOnNvm)
{
    Runtime rt(makeConfig(GetParam(), true));
    RuntimeScope scope(rt);

    // The container believes it is volatile; the allocator override
    // puts it on NVM — zero code change, the paper's exact scenario.
    using Tree = RbTree<std::uint64_t, std::uint64_t>;
    Tree tree(MemEnv::volatileEnv(rt));
    for (std::uint64_t i = 0; i < 300; ++i)
        tree.insert(i, i * 3);
    tree.validate();
    for (std::uint64_t i = 0; i < 300; ++i)
        ASSERT_EQ(tree.find(i).value(), i * 3);
    for (std::uint64_t i = 0; i < 300; i += 2)
        ASSERT_TRUE(tree.erase(i));
    tree.validate();

    if (GetParam() != Version::Volatile) {
        // The tree header really is on NVM.
        EXPECT_TRUE(Layout::isNvm(tree.header().resolve()));
    }
}

TEST_P(VmmallocMode, PointersStoredInNvmAreRelative)
{
    if (GetParam() == Version::Volatile ||
        GetParam() == Version::Explicit) {
        GTEST_SKIP();
    }
    Runtime rt(makeConfig(GetParam(), true));
    RuntimeScope scope(rt);

    struct Node
    {
        Ptr<Node> next;
    };
    // "Volatile" allocations — actually NVM under the override. The
    // pointer value is an NVM virtual address; storing it into an NVM
    // location converts it to relative format (storeP semantics) —
    // the soundness criterion even applies to this transparent mode.
    Ptr<Node> a = Ptr<Node>::fromBits(rt.mallocBytes(sizeof(Node)));
    Ptr<Node> b = Ptr<Node>::fromBits(rt.mallocBytes(sizeof(Node)));
    EXPECT_EQ(PtrRepr::determineY(a.bits()), PtrForm::VirtualNvm);

    a.setPtrField(&Node::next, b);
    const PtrBits stored = rt.space().read<PtrBits>(a.resolve());
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::Relative);
    EXPECT_TRUE(a.ptrField(&Node::next) == b);
}

TEST_P(VmmallocMode, OutputsMatchNonPersistedRun)
{
    // The whole point of the soundness campaign: same program, same
    // results, with and without the transparent persistence.
    const YcsbWorkload w([] {
        WorkloadSpec s;
        s.recordCount = 300;
        s.operationCount = 2000;
        return s;
    }());

    auto run = [&](bool persist) {
        Runtime rt(makeConfig(GetParam(), persist));
        RuntimeScope scope(rt);
        KvStore<RbTree<std::uint64_t, std::uint64_t>> store(
            MemEnv::volatileEnv(rt));
        return store.run(w).checksum;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST_P(VmmallocMode, StacksStayVolatile)
{
    // "the stack memory remains volatile": runtime-internal stack
    // temporaries are host values here, but alloca-style explicit
    // DRAM mappings must be unaffected by the override; the heap
    // fallback path still frees DRAM addresses correctly.
    Runtime rt(makeConfig(GetParam(), true));
    RuntimeScope scope(rt);
    VolatileHeap &direct = rt.heap();
    const SimAddr stack_slot = direct.allocate(64);
    EXPECT_FALSE(Layout::isNvm(stack_slot));
    rt.storeData<int>(stack_slot, 5);
    EXPECT_EQ(rt.loadData<int>(stack_slot), 5);
    rt.freeBytes(stack_slot); // dispatches to the DRAM heap
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, VmmallocMode,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });
