/** @file Seed-deterministic transaction fuzzer (ISSUE 7): random
 * operation sequences — overlapping and nested raw-byte writes,
 * overwrites within a transaction, aborts, empty transactions, and
 * group-commit batch boundaries — are run under both engines and
 * crashed at every persistence event, with every recovered image
 * checked against a shadow model of the committed prefixes.
 *
 * Replay: every workload derives from a single 64-bit seed printed in
 * the failure banner; set UPR_CRASH_SEED=<seed> to rerun exactly that
 * workload (and only it) under both engines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/ptr.hh"
#include "core/runtime.hh"
#include "crash/crash_sweep.hh"
#include "nvm/engine.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

std::uint64_t
mix(std::uint64_t &state)
{
    state += 0x9E37'79B9'7F4A'7C15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D0'49BB'1331'11EBULL;
    return x ^ (x >> 31);
}

/** Raw-byte window inside the arena the fuzzer scribbles over. */
constexpr Bytes kRegion = 2048;

/** One write of a fuzz transaction (offsets relative to the window). */
struct FuzzWrite
{
    Bytes off;
    Bytes len;
    std::uint8_t fill;
};

struct FuzzTxn
{
    bool abort = false;
    std::vector<FuzzWrite> writes; //!< empty => empty transaction
};

struct FuzzPlan
{
    std::uint64_t seed = 0;
    unsigned group = 1; //!< redo group-commit size (1 = solo)
    std::vector<FuzzTxn> txns;
};

/**
 * Everything about a fuzz run — transaction count, write shapes,
 * aborts, batch size — is a pure function of the seed.
 */
FuzzPlan
makePlan(std::uint64_t seed)
{
    FuzzPlan plan;
    plan.seed = seed;
    std::uint64_t rng = seed;
    plan.group = 1 + mix(rng) % 4; // 1..4: solo and batched shapes
    const std::size_t txns = 6 + mix(rng) % 6;
    for (std::size_t t = 0; t < txns; ++t) {
        FuzzTxn txn;
        const std::uint64_t shape = mix(rng) % 10;
        txn.abort = shape == 0;
        const std::size_t writes = shape == 1 ? 0 : 1 + mix(rng) % 4;
        for (std::size_t w = 0; w < writes; ++w) {
            FuzzWrite fw;
            // Lengths up to 96 over a 2 KiB window: plenty of
            // overlapping and fully-nested ranges across (and within)
            // transactions.
            fw.len = 1 + mix(rng) % 96;
            fw.off = mix(rng) % (kRegion - fw.len);
            fw.fill = static_cast<std::uint8_t>(mix(rng));
            txn.writes.push_back(fw);
        }
        plan.txns.push_back(std::move(txn));
    }
    return plan;
}

/**
 * Shadow model: the window contents after each *successful* commit.
 * snapshots[c] is the durable window after c committed transactions.
 */
std::vector<std::vector<std::uint8_t>>
shadowSnapshots(const FuzzPlan &plan)
{
    std::vector<std::vector<std::uint8_t>> snaps;
    std::vector<std::uint8_t> cur(kRegion, 0);
    for (Bytes i = 0; i < kRegion; ++i)
        cur[i] = static_cast<std::uint8_t>(i * 13 + 7);
    snaps.push_back(cur);
    for (const FuzzTxn &txn : plan.txns) {
        if (txn.abort)
            continue;
        for (const FuzzWrite &w : txn.writes)
            for (Bytes i = 0; i < w.len; ++i)
                cur[w.off + i] = static_cast<std::uint8_t>(
                    w.fill + static_cast<std::uint8_t>(i));
        snaps.push_back(cur);
    }
    return snaps;
}

Runtime::Config
config()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 1234;
    return cfg;
}

/**
 * Execute the plan against a pool of @p engine. Writes go straight
 * through the pool backing — under undo they are observed and logged;
 * under redo they are staged. @p committed tracks successful commits
 * incrementally (the injector aborts the run by throwing).
 */
void
runPlan(const FuzzPlan &plan, EngineKind engine,
        CrashInjector *injector, std::size_t &committed)
{
    committed = 0;
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("fuzz", 256 << 10, engine);
    rt.setGroupCommitSize(plan.group);
    Pool &p = rt.pools().pool(pool);
    const Bytes base = p.header().arenaStart;

    std::vector<std::uint8_t> init(kRegion);
    for (Bytes i = 0; i < kRegion; ++i)
        init[i] = static_cast<std::uint8_t>(i * 13 + 7);
    p.backing().write(base, init.data(), init.size());

    if (injector)
        injector->attach(p.backing());

    for (const FuzzTxn &txn : plan.txns) {
        rt.beginTxn(pool);
        for (const FuzzWrite &w : txn.writes) {
            std::vector<std::uint8_t> bytes(w.len);
            for (Bytes i = 0; i < w.len; ++i)
                bytes[i] = static_cast<std::uint8_t>(
                    w.fill + static_cast<std::uint8_t>(i));
            p.backing().write(base + w.off, bytes.data(), w.len);
        }
        if (txn.abort)
            rt.abortTxn();
        else {
            rt.commitTxn();
            ++committed;
        }
    }
    rt.flushGroup(); // drain any trailing group-commit batch
}

/** The failure banner: everything needed to replay this exact run. */
std::string
banner(const FuzzPlan &plan, EngineKind engine, std::uint64_t point)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "[txn-fuzz] engine=%s seed=%llu group=%u "
                  "crash-point=%llu — replay with UPR_CRASH_SEED=%llu",
                  engineKindName(engine),
                  (unsigned long long)plan.seed, plan.group,
                  (unsigned long long)point,
                  (unsigned long long)plan.seed);
    return buf;
}

void
fuzzOneSeed(std::uint64_t seed, EngineKind engine, CrashMode mode)
{
    setLogSink(+[](LogLevel level, const std::string &msg) {
        if (level == LogLevel::Panic || level == LogLevel::Fatal)
            std::fprintf(stderr, "%s\n", msg.c_str());
    });

    const FuzzPlan plan = makePlan(seed);
    const auto snaps = shadowSnapshots(plan);
    const unsigned group =
        engine == EngineKind::Redo ? plan.group : 1;
    std::size_t committed = 0;

    CrashSweepConfig cfg;
    cfg.mode = mode;
    cfg.seed = seed ^ 0xF0F0;

    const CrashSweepResult result = crashSweep(
        [&](CrashInjector &inj) {
            runPlan(plan, engine, &inj, committed);
        },
        [&](Pool &pool, std::uint64_t point, bool) {
            std::vector<std::uint8_t> actual(kRegion);
            pool.backing().read(pool.header().arenaStart,
                                actual.data(), kRegion);
            // Durable states: the last flushed batch boundary, or the
            // batch whose flush the crash interrupted. Solo commits
            // (and the undo engine) are batches of one.
            const std::size_t last = snaps.size() - 1;
            const std::size_t floor_batch =
                std::min<std::size_t>(committed - committed % group,
                                      last);
            const std::size_t next_batch =
                std::min<std::size_t>(floor_batch + group, last);
            const bool ok = actual == snaps[floor_batch] ||
                            actual == snaps[next_batch];
            EXPECT_TRUE(ok)
                << banner(plan, engine, point) << "\n  recovered "
                << "window matches neither " << floor_batch << " nor "
                << next_batch << " committed txns (of " << last
                << ")";
        },
        cfg);
    setLogSink(nullptr);

    EXPECT_GT(result.crashPoints, 0u) << banner(plan, engine, 0);
    // The full (uncrashed) profiling run must land exactly on the
    // final shadow state; sweep internals already reran recovery for
    // idempotency at every point.
    std::size_t full_committed = 0;
    std::uint64_t snap_count = 0;
    for (const FuzzTxn &t : plan.txns)
        snap_count += !t.abort;
    runPlan(plan, engine, nullptr, full_committed);
    EXPECT_EQ(full_committed, snap_count);
}

/** Seeds per engine; UPR_CRASH_SEED overrides with a single seed. */
std::vector<std::uint64_t>
seeds()
{
    if (const char *env = std::getenv("UPR_CRASH_SEED")) {
        return {std::strtoull(env, nullptr, 0)};
    }
    return {1, 0xBEEF, 0xC0FFEE};
}

} // namespace

TEST(TxnFuzz, UndoRandomWorkloadsSurviveEveryCrashPoint)
{
    for (std::uint64_t seed : seeds()) {
        fuzzOneSeed(seed, EngineKind::Undo,
                    CrashMode::DiscardUnfenced);
        fuzzOneSeed(seed, EngineKind::Undo, CrashMode::RetainRandom);
    }
}

TEST(TxnFuzz, RedoRandomWorkloadsSurviveEveryCrashPoint)
{
    for (std::uint64_t seed : seeds()) {
        fuzzOneSeed(seed, EngineKind::Redo,
                    CrashMode::DiscardUnfenced);
        fuzzOneSeed(seed, EngineKind::Redo, CrashMode::RetainRandom);
    }
}
