/** @file Unit tests for the storeP FSM-buffer occupancy model. */

#include <gtest/gtest.h>

#include "arch/storep_unit.hh"

using namespace upr;

TEST(StorePUnit, IssueCostIsOneCycleWhenFree)
{
    MachineParams p;
    StorePUnit u(p);
    EXPECT_EQ(u.issue(0, 30, 0), p.storePIssueLatency);
    EXPECT_EQ(u.stallCycles(), 0u);
    EXPECT_EQ(u.issuedCount(), 1u);
}

TEST(StorePUnit, TranslationLatencyHiddenInBuffer)
{
    MachineParams p;
    StorePUnit u(p);
    // Even a huge translation latency costs the pipeline one cycle...
    EXPECT_EQ(u.issue(0, 500, 0), p.storePIssueLatency);
    // ...but the entry stays busy until cycle 501.
    EXPECT_EQ(u.busyAt(100), 1u);
    EXPECT_EQ(u.busyAt(502), 0u);
}

TEST(StorePUnit, RsAndRdTranslateConcurrently)
{
    MachineParams p;
    StorePUnit u(p);
    u.issue(0, 40, 10);
    // Entry frees at issue + max(40, 10), not the sum.
    EXPECT_EQ(u.busyAt(40), 1u);
    EXPECT_EQ(u.busyAt(42), 0u);
}

TEST(StorePUnit, FullBufferStalls)
{
    MachineParams p;
    p.storePFsmEntries = 2;
    StorePUnit u(p);
    // Two long-latency storePs occupy both entries.
    u.issue(0, 100, 0);
    u.issue(0, 100, 0);
    // Third at cycle 0 must stall until the earliest completion.
    const Cycles cost = u.issue(0, 0, 0);
    EXPECT_GT(cost, p.storePIssueLatency);
    EXPECT_GT(u.stallCycles(), 0u);
}

TEST(StorePUnit, NoStallWhenIssuedAfterCompletion)
{
    MachineParams p;
    p.storePFsmEntries = 1;
    StorePUnit u(p);
    u.issue(0, 10, 0);
    // Issue well after the previous completion: no stall.
    EXPECT_EQ(u.issue(100, 10, 0), p.storePIssueLatency);
    EXPECT_EQ(u.stallCycles(), 0u);
}

TEST(StorePUnit, ManyZeroLatencyStorePsNeverStall)
{
    MachineParams p;
    StorePUnit u(p);
    Cycles now = 0;
    for (int i = 0; i < 1000; ++i)
        now += u.issue(now, 0, 0);
    EXPECT_EQ(u.stallCycles(), 0u);
    EXPECT_EQ(u.issuedCount(), 1000u);
}
