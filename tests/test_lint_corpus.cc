/** @file In-process lint of every tests/ir_corpus fixture: each
 * file must parse, verify, and produce exactly the Fig-4 findings
 * its header comment promises. The golden CLI output is diffed
 * separately by scripts/lint_corpus_check.sh (lint_corpus_golden). */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "compiler/analysis/abstract_interp.hh"
#include "compiler/analysis/fig4_conformance.hh"
#include "compiler/analysis/persistency.hh"
#include "compiler/check_insertion.hh"
#include "compiler/ir_parser.hh"
#include "compiler/type_inference.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

/** What one fixture is expected to produce. */
struct Fixture
{
    const char *name;
    /** Error diagnostic code, or nullptr for clean fixtures. */
    const char *errorCode;
    /** Every site provable without dynamic checks? */
    bool allProved;
    /**
     * Does the violation condemn enumerated sites (DiagnosedUB)?
     * A gep escape is an error about the arithmetic itself, not a
     * check site, so it diagnoses without condemning any site.
     */
    bool ubSites;
};

const Fixture kFixtures[] = {
    {"all_dynamic.ir", nullptr, false, false},
    {"clean_static.ir", nullptr, true, false},
    {"fig9_append.ir", nullptr, false, false},
    {"guard_narrow.ir", nullptr, false, false},
    {"cross_pool_compare.ir", "fig4-cross-pool-compare", true, true},
    {"escaping_arith.ir", "fig4-arith-escape", true, false},
    {"mixed_storep.ir", "fig4-mixed-storep", true, true},
    // Transactional fixtures: Fig-4 clean; their persist-* findings
    // are asserted by PersistencyCorpus below and the CLI goldens.
    {"txn_balanced.ir", nullptr, true, false},
    {"txn_fresh_elide.ir", nullptr, true, false},
    {"txn_unbalanced.ir", nullptr, true, false},
    {"txn_cross_pool.ir", nullptr, true, false},
};

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(UPR_IR_CORPUS_DIR) + "/" + name;
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

} // namespace

TEST(LintCorpus, FixturesProduceTheirPromisedFindings)
{
    for (const Fixture &fx : kFixtures) {
        SCOPED_TRACE(fx.name);
        Module mod = parseModule(readFixture(fx.name));
        const auto inf = inferPointerKinds(mod, true);
        FlowAnalysis flow(mod, inf);
        DiagnosticEngine diags;
        const ConformanceReport rep =
            checkFig4Conformance(mod, flow, diags);

        EXPECT_EQ(rep.sites.size(),
                  rep.provedSafe + rep.needsDynamic + rep.diagnosedUB);
        EXPECT_GT(rep.sites.size(), 0u);

        if (fx.errorCode == nullptr) {
            EXPECT_EQ(diags.errorCount(), 0u) << diags.render();
            EXPECT_EQ(rep.diagnosedUB, 0u);
        } else {
            if (fx.ubSites) {
                EXPECT_GT(rep.diagnosedUB, 0u);
            } else {
                EXPECT_EQ(rep.diagnosedUB, 0u);
            }
            bool found = false;
            for (const Diagnostic &d : diags.all()) {
                if (d.code != fx.errorCode)
                    continue;
                found = true;
                EXPECT_EQ(d.severity, DiagSeverity::Error);
                // Seeded violations must be *located*.
                EXPECT_TRUE(d.loc.known()) << d.render(fx.name);
                EXPECT_FALSE(d.function.empty());
            }
            EXPECT_TRUE(found)
                << "no " << fx.errorCode << " in:\n" << diags.render();
        }

        if (fx.allProved) {
            EXPECT_EQ(rep.needsDynamic, 0u);
        } else {
            EXPECT_GT(rep.needsDynamic, 0u);
        }
    }
}

TEST(LintCorpus, VerdictsMatchDiagnosedSites)
{
    // Every DiagnosedUB site must reference a real instruction and
    // carry the location the parser recorded.
    for (const Fixture &fx : kFixtures) {
        SCOPED_TRACE(fx.name);
        Module mod = parseModule(readFixture(fx.name));
        const auto inf = inferPointerKinds(mod, true);
        FlowAnalysis flow(mod, inf);
        DiagnosticEngine diags;
        const ConformanceReport rep =
            checkFig4Conformance(mod, flow, diags);
        for (const SiteReport &s : rep.sites) {
            const Function &fn = mod.get(s.function);
            ASSERT_LT(s.block, fn.blocks.size());
            ASSERT_LT(s.instIdx, fn.blocks[s.block].insts.size());
            if (s.verdict == SiteVerdict::DiagnosedUB) {
                EXPECT_TRUE(s.loc.known());
            }
        }
    }
}

TEST(PersistencyCorpus, TxFixturesProduceTheirPromisedFindings)
{
    struct TxCase
    {
        const char *name;
        /** Expected persist-* error code, or nullptr for clean. */
        const char *errorCode;
        std::uint64_t txStores;
        std::uint64_t elidedFresh;
        std::uint64_t elidedDominated;
    };
    const TxCase kCases[] = {
        {"txn_balanced.ir", nullptr, 2, 0, 0},
        {"txn_fresh_elide.ir", nullptr, 5, 3, 1},
        {"txn_unbalanced.ir", "persist-unbalanced-txn", 1, 0, 0},
        {"txn_cross_pool.ir", "persist-cross-pool-write", 1, 0, 0},
    };
    for (const TxCase &c : kCases) {
        SCOPED_TRACE(c.name);
        Module mod = parseModule(readFixture(c.name));
        EXPECT_TRUE(moduleUsesTx(mod));
        const auto inf = inferPointerKinds(mod, true);
        FlowAnalysis flow(mod, inf);
        CheckPlan plan = insertChecks(mod, &inf, false);
        const PersistencyResult r =
            analyzePersistency(mod, flow, &plan);

        EXPECT_EQ(r.txStores, c.txStores);
        EXPECT_EQ(r.elidedFresh, c.elidedFresh);
        EXPECT_EQ(r.elidedDominated, c.elidedDominated);
        EXPECT_EQ(r.logElided, c.elidedFresh + c.elidedDominated);
        if (c.errorCode == nullptr) {
            EXPECT_EQ(r.diags.errorCount(), 0u) << r.diags.render();
        } else {
            bool found = false;
            for (const Diagnostic &d : r.diags.all()) {
                if (d.code != c.errorCode)
                    continue;
                found = true;
                EXPECT_EQ(d.severity, DiagSeverity::Error);
                // Seeded violations must be *located*.
                EXPECT_TRUE(d.loc.known()) << d.render(c.name);
                EXPECT_FALSE(d.function.empty());
            }
            EXPECT_TRUE(found) << "no " << c.errorCode << " in:\n"
                               << r.diags.render();
        }
    }
}

TEST(LintCorpus, VerdictNamesAreStable)
{
    // uprlint's text/JSON output and the goldens depend on these.
    EXPECT_STREQ(siteVerdictName(SiteVerdict::ProvedSafe),
                 "proved-safe");
    EXPECT_STREQ(siteVerdictName(SiteVerdict::NeedsDynamic),
                 "needs-dynamic-check");
    EXPECT_STREQ(siteVerdictName(SiteVerdict::DiagnosedUB),
                 "diagnosed-UB");
}
