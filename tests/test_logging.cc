/** @file Unit tests for the logging/panic facility. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"

using namespace upr;

namespace
{

std::vector<std::pair<LogLevel, std::string>> gCaptured;

void
captureSink(LogLevel level, const std::string &message)
{
    gCaptured.emplace_back(level, message);
}

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        gCaptured.clear();
        setLogSink(captureSink);
    }

    void TearDown() override { setLogSink(nullptr); }
};

} // namespace

TEST_F(LoggingTest, InformGoesThroughSink)
{
    upr_inform("hello %d", 42);
    ASSERT_EQ(gCaptured.size(), 1u);
    EXPECT_EQ(gCaptured[0].first, LogLevel::Inform);
    EXPECT_EQ(gCaptured[0].second, "hello 42");
}

TEST_F(LoggingTest, WarnIncrementsCounter)
{
    const auto before = warnCount();
    upr_warn("watch out: %s", "thing");
    EXPECT_EQ(warnCount(), before + 1);
    ASSERT_EQ(gCaptured.size(), 1u);
    EXPECT_EQ(gCaptured[0].first, LogLevel::Warn);
    EXPECT_EQ(gCaptured[0].second, "watch out: thing");
}

TEST_F(LoggingTest, PanicAborts)
{
    setLogSink(nullptr); // let the death test see stderr
    EXPECT_DEATH(upr_panic("boom %d", 7), "boom 7");
}

TEST_F(LoggingTest, AssertPassesQuietly)
{
    upr_assert(1 + 1 == 2);
    EXPECT_TRUE(gCaptured.empty());
}

TEST_F(LoggingTest, AssertFailureAborts)
{
    setLogSink(nullptr);
    EXPECT_DEATH(upr_assert(false), "assertion");
}

TEST_F(LoggingTest, AssertMsgFormats)
{
    setLogSink(nullptr);
    EXPECT_DEATH(upr_assert_msg(false, "value was %d", 9), "value was 9");
}

TEST_F(LoggingTest, FatalExitsWithCode1)
{
    setLogSink(nullptr);
    EXPECT_EXIT(upr_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}
