/** @file Unit tests for the two-level TLB model. */

#include <gtest/gtest.h>

#include "arch/tlb.hh"

using namespace upr;

TEST(Tlb, MissThenHitOnSamePage)
{
    Tlb tlb("t", 64, 4);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1FFF));  // same 4 KiB page
    EXPECT_FALSE(tlb.access(0x2000)); // next page
}

TEST(Tlb, FlushDropsTranslations)
{
    Tlb tlb("t", 64, 4);
    tlb.access(0x1000);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x1000));
}

TEST(Tlb, StatsCount)
{
    Tlb tlb("t", 64, 4);
    tlb.access(0x1000);
    tlb.access(0x1000);
    tlb.access(0x1000);
    EXPECT_EQ(tlb.stats().lookup("misses"), 1u);
    EXPECT_EQ(tlb.stats().lookup("hits"), 2u);
}

TEST(TlbHierarchy, LatencyLevels)
{
    MachineParams p;
    TlbHierarchy h(p);

    // Cold: L1 miss + L2 miss + walk.
    EXPECT_EQ(h.access(0x5000),
              p.l1TlbLatency + p.l2TlbHitLatency + p.pageWalkLatency);
    EXPECT_EQ(h.walks(), 1u);

    // Warm: L1 hit.
    EXPECT_EQ(h.access(0x5000), p.l1TlbLatency);
}

TEST(TlbHierarchy, L2CatchesL1Evictions)
{
    MachineParams p;
    p.l1TlbEntries = 4; // 1 set x 4 ways after division
    p.l1TlbWays = 4;
    TlbHierarchy h(p);

    // Fill L1 beyond capacity: pages 0..4 (5 pages, 4 ways).
    for (SimAddr page = 0; page < 5; ++page)
        h.access(page * Layout::kPageSize);

    // Page 0 evicted from L1 but present in the big L2.
    EXPECT_EQ(h.access(0), p.l1TlbLatency + p.l2TlbHitLatency);
}

TEST(TlbHierarchy, FlushAllForcesWalks)
{
    MachineParams p;
    TlbHierarchy h(p);
    h.access(0x9000);
    h.flushAll();
    EXPECT_EQ(h.access(0x9000),
              p.l1TlbLatency + p.l2TlbHitLatency + p.pageWalkLatency);
}
