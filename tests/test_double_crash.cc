/** @file Double-crash recovery: a crash in the middle of undo-log
 * rollback, followed by a second recovery, must land in exactly the
 * state a single clean recovery produces — at every crash point
 * inside the recovery itself, under both the strict and the
 * torn-write retention schedules. Recovery must be idempotent and
 * restartable, or "recover on next open" is not a safety net. */

#include <gtest/gtest.h>

#include <cstring>

#include "common/logging.hh"
#include "crash/crash_injector.hh"
#include "mem/address_space.hh"
#include "nvm/pool_manager.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

constexpr Bytes kSlots = 6;

/** Offsets the interrupted transaction scribbled over. */
Bytes
slotOff(const std::vector<std::uint8_t> &image, Bytes i)
{
    std::uint64_t arena;
    std::memcpy(&arena, image.data() + 48, sizeof(arena));
    return arena + 64 + 16 * i;
}

std::uint64_t
peek64(const Backing &b, Bytes off)
{
    std::uint64_t v;
    b.read(off, &v, sizeof(v));
    return v;
}

/**
 * A mid-transaction crash image: kSlots logged pre-images (value
 * 100+i each), all overwritten with 200+i, log still active.
 */
std::vector<std::uint8_t>
interruptedImage()
{
    AddressSpace space;
    PoolManager mgr(space, Placement::Sequential, 1);
    const PoolId id = mgr.createPool("d", 1 << 20);
    Pool &p = mgr.pool(id);

    std::vector<std::uint8_t> probe = p.backing().raw().toVector();
    for (Bytes i = 0; i < kSlots; ++i) {
        const std::uint64_t v = 100 + i;
        p.backing().write(slotOff(probe, i), &v, sizeof(v));
    }

    Txn txn(p);
    for (Bytes i = 0; i < kSlots; ++i) {
        const Bytes off = slotOff(probe, i);
        txn.recordWrite(static_cast<PoolOffset>(off), 8);
        const std::uint64_t v = 200 + i;
        p.backing().write(off, &v, sizeof(v));
    }
    std::vector<std::uint8_t> image = p.backing().raw().toVector();
    txn.commit();
    return image;
}

/** Recover @p image to completion with no interference. */
std::vector<std::uint8_t>
recoverCleanly(const std::vector<std::uint8_t> &image)
{
    Backing b;
    b.assign(image);
    Pool pool("clean", std::move(b));
    EXPECT_TRUE(Txn::recover(pool));
    return pool.backing().raw().toVector();
}

/**
 * Crash the recovery of @p image at persistence event @p crashAt
 * under @p mode, then recover the wreckage. Returns the final image.
 */
std::vector<std::uint8_t>
crashRecoveryAt(const std::vector<std::uint8_t> &image,
                std::uint64_t crashAt, CrashMode mode,
                std::uint64_t seed, bool &crashed)
{
    CrashInjector injector(mode, seed);
    injector.arm(crashAt);
    {
        Backing b;
        b.assign(image);
        Pool pool("wounded", std::move(b));
        injector.attach(pool.backing());
        try {
            Txn::recover(pool);
            crashed = false;
            return pool.backing().raw().toVector();
        } catch (const SimulatedCrash &) {
            crashed = true;
        }
    }

    Backing again;
    again.assign(injector.image());
    Pool pool("rerecovered", std::move(again));
    Txn::recover(pool);
    return pool.backing().raw().toVector();
}

/** Count the persistence events one full recovery emits. */
std::uint64_t
recoveryEvents(const std::vector<std::uint8_t> &image)
{
    CrashInjector injector(CrashMode::DiscardUnfenced, 1);
    injector.arm(0); // profile only
    Backing b;
    b.assign(image);
    Pool pool("profile", std::move(b));
    injector.attach(pool.backing());
    Txn::recover(pool);
    return injector.events();
}

void
sweepRecoveryCrashes(CrashMode mode)
{
    setLogSink(+[](LogLevel, const std::string &) {});
    const auto image = interruptedImage();
    const auto want = recoverCleanly(image);
    const std::uint64_t events = recoveryEvents(image);
    ASSERT_GT(events, 0u);

    std::uint64_t crashes = 0;
    for (std::uint64_t at = 1; at <= events; ++at) {
        bool crashed = false;
        const auto final_image =
            crashRecoveryAt(image, at, mode, 7 * at + 1, crashed);
        crashes += crashed ? 1 : 0;

        Backing b;
        b.assign(final_image);
        Pool pool("check", std::move(b));
        EXPECT_FALSE(Txn::isActive(pool)) << "crash point " << at;
        for (Bytes i = 0; i < kSlots; ++i) {
            EXPECT_EQ(peek64(pool.backing(), slotOff(final_image, i)),
                      100 + i)
                << "crash point " << at << ", slot " << i;
        }
    }
    EXPECT_GT(crashes, 0u) << "sweep never crashed inside recovery";
    setLogSink(nullptr);
}

} // namespace

TEST(DoubleCrash, RecoveryRestartsFromAnyPointDiscardUnfenced)
{
    sweepRecoveryCrashes(CrashMode::DiscardUnfenced);
}

TEST(DoubleCrash, RecoveryRestartsFromAnyPointRetainRandom)
{
    sweepRecoveryCrashes(CrashMode::RetainRandom);
}

TEST(DoubleCrash, ThirdRecoveryIsANoOp)
{
    setLogSink(+[](LogLevel, const std::string &) {});
    const auto image = interruptedImage();

    bool crashed = false;
    const auto final_image = crashRecoveryAt(
        image, 3, CrashMode::RetainRandom, 17, crashed);
    ASSERT_TRUE(crashed);

    Backing b;
    b.assign(final_image);
    Pool pool("p", std::move(b));
    EXPECT_FALSE(Txn::recover(pool)); // nothing left to do
    EXPECT_EQ(pool.backing().raw().toVector(), final_image);
    setLogSink(nullptr);
}
