/** @file Unit + property tests for the in-pool persistent allocator. */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "nvm/pool.hh"
#include "nvm/pool_allocator.hh"

using namespace upr;

class PoolAllocatorTest : public ::testing::Test
{
  protected:
    PoolAllocatorTest() : pool(1, "t", 1 << 20), alloc(pool)
    {
        alloc.format();
    }

    Pool pool;
    PoolAllocator alloc;
};

TEST_F(PoolAllocatorTest, FormatCreatesOneFreeBlock)
{
    alloc.checkConsistency();
    EXPECT_EQ(alloc.liveBlocks(), 0u);
    EXPECT_GT(alloc.freeBytes(), 900u * 1024);
}

TEST_F(PoolAllocatorTest, DoubleFormatPanics)
{
    EXPECT_DEATH(alloc.format(), "formatted twice");
}

TEST_F(PoolAllocatorTest, AllocAlignedAndInArena)
{
    const PoolOffset p = alloc.alloc(100);
    EXPECT_EQ(p % 16, 0u);
    EXPECT_GE(p, pool.header().arenaStart);
    EXPECT_LT(p + 100, pool.size());
    EXPECT_GE(alloc.payloadSize(p), 100u);
    alloc.checkConsistency();
}

TEST_F(PoolAllocatorTest, AllocZeroBytesStillDistinct)
{
    const PoolOffset a = alloc.alloc(0);
    const PoolOffset b = alloc.alloc(0);
    EXPECT_NE(a, b);
}

TEST_F(PoolAllocatorTest, FreeReturnsSpace)
{
    const Bytes before = alloc.freeBytes();
    const PoolOffset p = alloc.alloc(1000);
    EXPECT_LT(alloc.freeBytes(), before);
    alloc.free(p);
    EXPECT_EQ(alloc.freeBytes(), before);
    EXPECT_EQ(alloc.liveBlocks(), 0u);
    alloc.checkConsistency();
}

TEST_F(PoolAllocatorTest, DoubleFreePanics)
{
    const PoolOffset p = alloc.alloc(64);
    alloc.free(p);
    EXPECT_DEATH(alloc.free(p), "double free");
}

TEST_F(PoolAllocatorTest, ExhaustionThrowsPoolFull)
{
    EXPECT_THROW(alloc.alloc(2 << 20), Fault);
    try {
        alloc.alloc(2 << 20);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolFull);
    }
    // Failing allocation must not corrupt the arena.
    alloc.checkConsistency();
}

TEST_F(PoolAllocatorTest, ManySmallThenCoalesceBack)
{
    std::vector<PoolOffset> ptrs;
    for (int i = 0; i < 200; ++i)
        ptrs.push_back(alloc.alloc(100));
    EXPECT_EQ(alloc.liveBlocks(), 200u);
    alloc.checkConsistency();
    // Free in an interleaved order to exercise both coalesce paths.
    for (std::size_t i = 0; i < ptrs.size(); i += 2)
        alloc.free(ptrs[i]);
    alloc.checkConsistency();
    for (std::size_t i = 1; i < ptrs.size(); i += 2)
        alloc.free(ptrs[i]);
    alloc.checkConsistency();
    EXPECT_EQ(alloc.liveBlocks(), 0u);
    // Everything coalesced into one block again: a huge alloc fits.
    EXPECT_NO_THROW(alloc.alloc(900 * 1024));
}

TEST_F(PoolAllocatorTest, MetadataSurvivesImageCopy)
{
    std::vector<PoolOffset> keep;
    for (int i = 0; i < 10; ++i)
        keep.push_back(alloc.alloc(64));
    alloc.free(keep[3]);
    alloc.free(keep[7]);

    // Clone the pool image; the allocator state must be identical
    // because every byte of metadata lives inside the pool.
    Pool clone("clone", Backing(pool.backing()));
    PoolAllocator alloc2(clone);
    alloc2.checkConsistency();
    EXPECT_EQ(alloc2.liveBlocks(), 8u);
    EXPECT_EQ(alloc2.freeBytes(), alloc.freeBytes());

    // The clone can keep allocating.
    const PoolOffset p = alloc2.alloc(64);
    EXPECT_EQ(p % 16, 0u);
    alloc2.checkConsistency();
}

/** Property test: random alloc/free with payload integrity checks. */
TEST_F(PoolAllocatorTest, RandomizedStress)
{
    Rng rng(7);
    struct Block
    {
        PoolOffset off;
        Bytes size;
        std::uint8_t fill;
    };
    std::vector<Block> live;

    for (int step = 0; step < 3000; ++step) {
        if (live.empty() || rng.nextBounded(100) < 55) {
            const Bytes n = 1 + rng.nextBounded(1024);
            PoolOffset p;
            try {
                p = alloc.alloc(n);
            } catch (const Fault &) {
                continue; // pool momentarily full; keep going
            }
            const auto fill = static_cast<std::uint8_t>(step & 0xff);
            std::vector<std::uint8_t> data(n, fill);
            pool.backing().write(p, data.data(), n);
            live.push_back({p, n, fill});
        } else {
            const std::size_t idx = rng.nextBounded(live.size());
            const Block b = live[idx];
            std::vector<std::uint8_t> data(b.size);
            pool.backing().read(b.off, data.data(), b.size);
            for (Bytes i = 0; i < b.size; i += 61)
                ASSERT_EQ(data[i], b.fill) << "corrupt at step " << step;
            alloc.free(b.off);
            live[idx] = live.back();
            live.pop_back();
        }
        if (step % 250 == 0)
            alloc.checkConsistency();
    }
    alloc.checkConsistency();
    EXPECT_EQ(alloc.liveBlocks(), live.size());
}
