/** @file Cross-pool object graphs: relative pointers embed their
 * pool ID, so a persistent object in pool A may point at one in pool
 * B; both pools can relocate independently and the graph survives.
 * Also covers independent detach faulting and image round-trips of
 * entangled pools. */

#include <gtest/gtest.h>

#include "containers/memory_env.hh"

using namespace upr;

namespace
{

struct Node
{
    Ptr<Node> next;
    std::uint64_t value = 0;
};

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 83;
    return cfg;
}

} // namespace

class CrossPool : public ::testing::TestWithParam<Version>
{
  protected:
    CrossPool() : rt(makeConfig(GetParam())), scope(rt)
    {
        if (GetParam() != Version::Volatile) {
            poolA = rt.createPool("A", 8 << 20);
            poolB = rt.createPool("B", 8 << 20);
        }
    }

    Runtime rt;
    RuntimeScope scope;
    PoolId poolA = 0;
    PoolId poolB = 0;
};

TEST_P(CrossPool, PointerFromPoolAToPoolB)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    MemEnv envA = MemEnv::persistentEnv(rt, poolA);
    MemEnv envB = MemEnv::persistentEnv(rt, poolB);

    Ptr<Node> a = envA.alloc<Node>();
    Ptr<Node> b = envB.alloc<Node>();
    b.setField(&Node::value, std::uint64_t{0xB0B});
    a.setPtrField(&Node::next, b);

    // The stored pointer is relative and carries pool B's ID.
    const PtrBits stored = rt.space().read<PtrBits>(a.resolve());
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::Relative);
    EXPECT_EQ(PtrRepr::poolOf(stored), poolB);
    EXPECT_EQ(a.ptrField(&Node::next).field(&Node::value), 0xB0Bu);
}

TEST_P(CrossPool, GraphSurvivesIndependentRelocation)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    MemEnv envA = MemEnv::persistentEnv(rt, poolA);
    MemEnv envB = MemEnv::persistentEnv(rt, poolB);

    // Chain alternating between pools: a0 -> b0 -> a1 -> b1 -> ...
    std::vector<Ptr<Node>> chain;
    for (int i = 0; i < 20; ++i) {
        MemEnv &env = (i % 2) ? envB : envA;
        chain.push_back(env.alloc<Node>());
        chain.back().setField(&Node::value, std::uint64_t(i));
    }
    for (int i = 0; i + 1 < 20; ++i)
        chain[i].setPtrField(&Node::next, chain[i + 1]);

    // Relocate only pool B.
    rt.pools().detach(poolB);
    rt.pools().openPool("B");
    // Then only pool A — twice, for good measure.
    rt.pools().detach(poolA);
    rt.pools().openPool("A");
    rt.pools().detach(poolA);
    rt.pools().openPool("A");

    Ptr<Node> cur = chain[0];
    for (int i = 0; i < 20; ++i) {
        ASSERT_EQ(cur.field(&Node::value), std::uint64_t(i));
        cur = cur.ptrField(&Node::next);
    }
    EXPECT_TRUE(cur.isNull());
}

TEST_P(CrossPool, DetachingOnePoolFaultsOnlyItsSide)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    MemEnv envA = MemEnv::persistentEnv(rt, poolA);
    MemEnv envB = MemEnv::persistentEnv(rt, poolB);

    Ptr<Node> a = envA.alloc<Node>();
    Ptr<Node> b = envB.alloc<Node>();
    a.setPtrField(&Node::next, b);
    a.setField(&Node::value, std::uint64_t{1});

    rt.pools().detach(poolB);

    // Pool A objects stay reachable.
    EXPECT_EQ(a.field(&Node::value), 1u);
    // Following the cross-pool edge faults with PoolDetached.
    Ptr<Node> loaded = a.ptrField(&Node::next);
    try {
        (void)loaded.field(&Node::value);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolDetached);
    }

    // Reattach heals the edge.
    rt.pools().openPool("B");
    EXPECT_NO_THROW((void)loaded.field(&Node::value));
}

TEST_P(CrossPool, EntangledPoolsRoundTripThroughImages)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    MemEnv envA = MemEnv::persistentEnv(rt, poolA);
    MemEnv envB = MemEnv::persistentEnv(rt, poolB);

    Ptr<Node> a = envA.alloc<Node>();
    Ptr<Node> b = envB.alloc<Node>();
    a.setPtrField(&Node::next, b);
    b.setField(&Node::value, std::uint64_t{0x5EED});
    rt.pools().pool(poolA).setRootOff(PtrRepr::offsetOf(a.bits()));

    const std::string pa = ::testing::TempDir() + "/xa.img";
    const std::string pb = ::testing::TempDir() + "/xb.img";
    rt.pools().saveImage(poolA, pa);
    rt.pools().saveImage(poolB, pb);

    // A fresh process loads both images (any order, new addresses).
    Runtime rt2(makeConfig(GetParam()));
    RuntimeScope scope2(rt2);
    const PoolId b2 = rt2.pools().loadImage(pb, "B");
    const PoolId a2 = rt2.pools().loadImage(pa, "A");
    EXPECT_EQ(a2, poolA);
    EXPECT_EQ(b2, poolB);

    Ptr<Node> root = Ptr<Node>::fromBits(PtrRepr::makeRelative(
        a2, rt2.pools().pool(a2).rootOff()));
    EXPECT_EQ(root.ptrField(&Node::next).field(&Node::value),
              0x5EEDu);
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST_P(CrossPool, ComparisonsAcrossPools)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    MemEnv envA = MemEnv::persistentEnv(rt, poolA);
    MemEnv envB = MemEnv::persistentEnv(rt, poolB);
    Ptr<Node> a = envA.alloc<Node>();
    Ptr<Node> b = envB.alloc<Node>();
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(a != b);
    // Ordering is by virtual address — stable within one attach.
    const bool lt1 = a < b;
    const bool lt2 = b < a;
    EXPECT_NE(lt1, lt2);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, CrossPool,
    ::testing::Values(Version::Sw, Version::Hw, Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });
