/** @file Tests for trace record/replay: exact-replay equivalence,
 * parameter re-simulation, and file round-trips. */

#include <gtest/gtest.h>

#include <cstdio>

#include "arch/trace.hh"
#include "containers/rb_tree.hh"

using namespace upr;

namespace
{

/** Record a small RB-tree workload; return (trace, recorded cycles). */
std::pair<Trace, Cycles>
recordWorkload(Version version, const MachineParams &params)
{
    Runtime::Config cfg;
    cfg.version = version;
    cfg.machine = params;
    cfg.seed = 5;
    Runtime rt(cfg);
    RuntimeScope scope(rt);

    Trace trace;
    rt.machine().setTrace(&trace); // before the first event

    const PoolId pool = rt.createPool("t", 16 << 20);
    RbTree<std::uint64_t, std::uint64_t> tree(
        MemEnv::persistentEnv(rt, pool));
    for (std::uint64_t i = 0; i < 400; ++i)
        tree.insert(i * 13 % 1000, i);
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < 1000; ++i)
        sum += tree.find(i).value_or(0);
    tree.forEach([&](std::uint64_t k, std::uint64_t v) {
        sum ^= k + v;
    });
    (void)sum;

    rt.machine().setTrace(nullptr);
    return {std::move(trace), rt.machine().now()};
}

} // namespace

TEST(Trace, ReplaySameParamsReproducesCyclesExactly)
{
    for (Version v : {Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit}) {
        SCOPED_TRACE(versionName(v));
        MachineParams params;
        auto [trace, recorded_cycles] = recordWorkload(v, params);
        ASSERT_GT(trace.size(), 0u);

        const ReplayResult replayed = replayTrace(trace, params);
        EXPECT_EQ(replayed.cycles, recorded_cycles);
    }
}

TEST(Trace, ReplayCountsMatchSemantics)
{
    MachineParams params;
    auto [trace, cycles] = recordWorkload(Version::Hw, params);
    (void)cycles;
    const ReplayResult r = replayTrace(trace, params);
    EXPECT_GT(r.memAccesses, 0u);
    EXPECT_GT(r.branches, 0u);
    EXPECT_GT(r.storePs, 0u);
    EXPECT_GT(r.l1Misses, 0u);
    EXPECT_LT(r.l1Misses, r.memAccesses);
}

TEST(Trace, ReplayWithSlowerNvmCostsMore)
{
    MachineParams base;
    auto [trace, cycles] = recordWorkload(Version::Hw, base);
    (void)cycles;

    MachineParams slow = base;
    slow.nvmLatency = 960;
    const ReplayResult fast = replayTrace(trace, base);
    const ReplayResult slowed = replayTrace(trace, slow);
    EXPECT_GT(slowed.cycles, fast.cycles);
    // Access counts are properties of the trace, not the parameters.
    EXPECT_EQ(slowed.memAccesses, fast.memAccesses);
    EXPECT_EQ(slowed.branches, fast.branches);
}

TEST(Trace, ReplayWithTinyCachesMissesMore)
{
    MachineParams base;
    auto [trace, cycles] = recordWorkload(Version::Hw, base);
    (void)cycles;

    MachineParams tiny = base;
    tiny.l1Size = 1024;
    tiny.l2Size = 4096;
    tiny.l3Size = 16384;
    const ReplayResult big = replayTrace(trace, base);
    const ReplayResult small = replayTrace(trace, tiny);
    EXPECT_GT(small.l1Misses, big.l1Misses);
    EXPECT_GT(small.cycles, big.cycles);
}

TEST(Trace, SaveLoadRoundTrip)
{
    MachineParams params;
    auto [trace, cycles] = recordWorkload(Version::Hw, params);
    (void)cycles;

    const std::string path = ::testing::TempDir() + "/t.trace";
    trace.save(path);
    const Trace loaded = Trace::load(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 997) {
        EXPECT_EQ(static_cast<int>(loaded.events()[i].kind),
                  static_cast<int>(trace.events()[i].kind));
        EXPECT_EQ(loaded.events()[i].a, trace.events()[i].a);
        EXPECT_EQ(loaded.events()[i].b, trace.events()[i].b);
    }
    // A loaded trace replays identically.
    EXPECT_EQ(replayTrace(loaded, params).cycles,
              replayTrace(trace, params).cycles);
    std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/garbage.trace";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_THROW(Trace::load(path), Fault);
    std::remove(path.c_str());
}

TEST(Trace, DetachedSinkRecordsNothing)
{
    Runtime rt;
    RuntimeScope scope(rt);
    Trace trace;
    rt.machine().setTrace(&trace);
    rt.machine().setTrace(nullptr);
    const PoolId pool = rt.createPool("p", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);
    rt.storeData<std::uint64_t>(rt.resolveForAccess(p, 1), 5);
    EXPECT_EQ(trace.size(), 0u);
}
