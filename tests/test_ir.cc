/** @file Tests for the mini-IR: builder, validation, printing, and
 * the text parser (round-trip). */

#include <gtest/gtest.h>

#include "common/fault.hh"
#include "compiler/ir_builder.hh"
#include "compiler/ir_parser.hh"

using namespace upr;
using namespace upr::ir;

TEST(IrBuilder, BuildsAValidFunction)
{
    Module mod;
    FunctionBuilder fb(mod, "sum3", {Type::I64, Type::I64}, Type::I64);
    const BlockId entry = fb.block("entry");
    fb.setInsert(entry);
    const ValueId c = fb.constI64(3);
    const ValueId t = fb.add(fb.param(0), fb.param(1));
    const ValueId r = fb.add(t, c);
    fb.ret(r);
    Function &fn = fb.finish();

    EXPECT_EQ(fn.name, "sum3");
    EXPECT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.numValues(), 5u); // 2 params + 3 temps
    EXPECT_NO_FATAL_FAILURE(validate(fn));
}

TEST(IrValidate, EmptyFunctionPanics)
{
    Function fn;
    fn.name = "empty";
    EXPECT_DEATH(validate(fn), "no blocks");
}

TEST(IrValidate, MissingTerminatorPanics)
{
    Module mod;
    FunctionBuilder fb(mod, "bad", {}, Type::Void);
    fb.setInsert(fb.block("entry"));
    fb.constI64(1);
    EXPECT_DEATH(fb.finish(), "terminator");
}

TEST(IrValidate, CallToUndefinedPanics)
{
    Module mod;
    FunctionBuilder fb(mod, "caller", {}, Type::Void);
    fb.setInsert(fb.block("entry"));
    fb.call("ghost", Type::Void, {});
    fb.ret();
    fb.finish();
    EXPECT_DEATH(validate(mod), "undefined");
}

TEST(IrPrint, ContainsStructure)
{
    Module mod;
    FunctionBuilder fb(mod, "f", {Type::Ptr}, Type::I64);
    fb.setInsert(fb.block("entry"));
    const ValueId v = fb.load(Type::I64, fb.param(0), "v");
    fb.ret(v);
    Function &fn = fb.finish();

    const std::string text = print(fn);
    EXPECT_NE(text.find("func @f(%arg0: ptr) -> i64"),
              std::string::npos);
    EXPECT_NE(text.find("%v = load.i64 %arg0"), std::string::npos);
    EXPECT_NE(text.find("ret %v"), std::string::npos);
}

TEST(IrParser, ParsesSimpleFunction)
{
    Module mod = parseModule(R"(
func @inc(%x: i64) -> i64 {
entry:
  %one = const 1
  %r = add %x, %one
  ret %r
}
)");
    const Function &fn = mod.get("inc");
    EXPECT_EQ(fn.paramTypes.size(), 1u);
    EXPECT_EQ(fn.returnType, Type::I64);
    EXPECT_EQ(fn.blocks.size(), 1u);
    EXPECT_EQ(fn.blocks[0].insts.size(), 3u);
}

TEST(IrParser, ParsesControlFlowWithForwardTargets)
{
    Module mod = parseModule(R"(
func @loop(%n: i64) -> i64 {
entry:
  %zero = const 0
  jmp head
head:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %acc = phi.i64 [entry, %zero], [body, %anext]
  %cont = lt %i, %n
  br %cont, body, exit
body:
  %one = const 1
  %inext = add %i, %one
  %anext = add %acc, %i
  jmp head
exit:
  ret %acc
}
)");
    const Function &fn = mod.get("loop");
    EXPECT_EQ(fn.blocks.size(), 4u); // entry, head, body, exit
    // The phi references %inext defined later — resolved correctly.
    const Inst &phi = fn.blocks[1].insts[0];
    EXPECT_EQ(phi.op, Op::Phi);
    EXPECT_EQ(phi.operands.size(), 2u);
}

TEST(IrParser, RoundTripsThroughPrint)
{
    const char *source = R"(
func @append(%p: ptr, %n: ptr) {
entry:
  %same = eq %p, %n
  br %same, out, doit
doit:
  %slot = gep %p, 8
  storep %n, %slot
  jmp out
out:
  ret
}
)";
    Module a = parseModule(source);
    const std::string text = print(a);
    Module b = parseModule(text);
    // Printing the reparse reproduces the same text: fixpoint.
    EXPECT_EQ(print(b), text);
}

TEST(IrParser, CommentsAndBlanksIgnored)
{
    Module mod = parseModule(R"(
; leading comment
func @f() -> i64 {
entry:          ; entry block
  %x = const 7  ; lucky
  ret %x
}
)");
    EXPECT_EQ(mod.get("f").blocks[0].insts.size(), 2u);
}

TEST(IrParser, ErrorsCarryLineNumbers)
{
    try {
        parseModule("func @f() {\nentry:\n  %x = bogus 1\n  ret\n}\n");
        FAIL();
    } catch (const Fault &f) {
        EXPECT_NE(std::string(f.what()).find("line 3"),
                  std::string::npos);
        EXPECT_NE(std::string(f.what()).find("bogus"),
                  std::string::npos);
    }
}

TEST(IrParser, UseBeforeDefinitionRejected)
{
    EXPECT_THROW(parseModule(R"(
func @f() -> i64 {
entry:
  %r = add %x, %x
  ret %r
}
)"),
                 Fault);
}

TEST(IrParser, TxOpcodesParseAndRoundTrip)
{
    const std::string source = R"(func @f(%n: i64) -> i64 {
entry:
  %p = pmalloc 16
  txbegin 0
  store %n, %p
  txcommit
  txbegin 2
  txabort
  ret %n
}
)";
    Module mod = parseModule(source);
    const auto &insts = mod.get("f").blocks[0].insts;
    EXPECT_EQ(insts[1].op, Op::TxBegin);
    EXPECT_EQ(insts[1].imm, 0);
    EXPECT_EQ(insts[3].op, Op::TxCommit);
    EXPECT_EQ(insts[4].op, Op::TxBegin);
    EXPECT_EQ(insts[4].imm, 2);
    EXPECT_EQ(insts[5].op, Op::TxAbort);
    // print -> parse round trip preserves the tx ops.
    Module again = parseModule(print(mod));
    EXPECT_EQ(again.get("f").blocks[0].insts[5].op, Op::TxAbort);
}

TEST(IrParser, NegativeTxSlotRejected)
{
    EXPECT_THROW(parseModule(R"(
func @f() {
entry:
  txbegin -1
  txcommit
  ret
}
)"),
                 Fault);
}

TEST(IrParser, UnknownOpcodeSuggestsNearestSpelling)
{
    try {
        parseModule("func @f() {\nentry:\n  txcomit\n  ret\n}\n");
        FAIL();
    } catch (const Fault &f) {
        const std::string msg = f.what();
        // The diagnostic is located (line and column of the opcode).
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("col 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("unknown opcode 'txcomit'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("did you mean `txcommit`?"),
                  std::string::npos)
            << msg;
    }
}

TEST(IrParser, NearestOpcodeBoundsItsEditDistance)
{
    EXPECT_EQ(nearestOpcode("stor"), "store");
    EXPECT_EQ(nearestOpcode("txbgin"), "txbegin");
    EXPECT_EQ(nearestOpcode("phi.i46"), "phi.i64");
    // Nothing within distance 2: no suggestion at all.
    EXPECT_EQ(nearestOpcode("frobnicate"), "");
}

TEST(IrParser, MultipleFunctionsAndCalls)
{
    Module mod = parseModule(R"(
func @double(%x: i64) -> i64 {
entry:
  %r = add %x, %x
  ret %r
}

func @quad(%x: i64) -> i64 {
entry:
  %d = call @double(%x)
  %r = call @double(%d)
  ret %r
}
)");
    EXPECT_EQ(mod.functions.size(), 2u);
    EXPECT_EQ(mod.get("quad").blocks[0].insts[0].callee, "double");
}
