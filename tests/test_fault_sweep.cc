/** @file The hostile-media acceptance sweep (ISSUE 6): crash images of
 * a transactional kv-store workload are corrupted with every
 * MediaFaultKind in every FaultRegion, and every injected corruption
 * must be repaired OR detected-and-contained — never served as silent
 * wrong data, and never able to take a sibling pool down. */

#include <gtest/gtest.h>

#include <map>

#include "common/logging.hh"
#include "faultinject/fault_sweep.hh"
#include "kvstore/kv_store.hh"
#include "nvm/txn.hh"
#include "txn_ir_workload.hh"

using namespace upr;

namespace
{

using Tree = RbTree<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kSetupKeys = 8;

struct Op
{
    bool erase;
    std::uint64_t key;
    std::uint64_t value;
};

const std::vector<Op> &
ops()
{
    static const std::vector<Op> kOps = {
        {false, 100, 1000},
        {false, 3, 333},
        {true, 5, 0},
        {false, 101, 1010},
    };
    return kOps;
}

std::map<std::uint64_t, std::uint64_t>
referenceState(std::size_t n)
{
    std::map<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        m[i] = i * 10;
    for (std::size_t i = 0; i < n && i < ops().size(); ++i) {
        if (ops()[i].erase)
            m.erase(ops()[i].key);
        else
            m[ops()[i].key] = ops()[i].value;
    }
    return m;
}

Runtime::Config
config()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 1234;
    return cfg;
}

void
workload(CrashInjector &injector, std::size_t &committed,
         EngineKind engine)
{
    committed = 0;
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("sweep", 1 << 20, engine);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    KvStore<Tree> store(env);
    rt.pools().pool(pool).setRootOff(static_cast<PoolOffset>(
        PtrRepr::offsetOf(store.index().header().bits())));
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        store.set(i, i * 10);

    injector.attach(rt.pools().pool(pool).backing());
    for (const Op &op : ops()) {
        rt.beginTxn(pool);
        if (op.erase)
            store.index().erase(op.key);
        else
            store.set(op.key, op.value);
        rt.commitTxn();
        ++committed;
    }
}

/** Deep content validation of a served pool (crash-sweep contract). */
bool
contentValid(const std::vector<std::uint8_t> &image,
             std::size_t committed)
{
    try {
        Backing b;
        b.assign(image);
        Runtime rt(config());
        RuntimeScope scope(rt);
        const PoolId id = rt.pools().adoptImage(std::move(b), "v");

        const ArenaReport arena =
            rt.pools().allocator(id).inspectArena();
        if (!arena.tagsValid || !arena.freeListValid ||
            !arena.usedBytesMatch)
            return false;

        const PoolOffset root = rt.pools().pool(id).rootOff();
        if (root == 0)
            return false;
        MemEnv env = MemEnv::persistentEnv(rt, id);
        Tree tree(env, Ptr<Tree::Header>::fromBits(
                           PtrRepr::makeRelative(id, root)));
        tree.validate();
        std::map<std::uint64_t, std::uint64_t> actual;
        tree.forEach([&](std::uint64_t k, std::uint64_t v) {
            actual.emplace(k, v);
        });
        return actual == referenceState(committed) ||
               actual == referenceState(committed + 1);
    } catch (const std::exception &) {
        return false;
    }
}

void
runFaultSweep(CrashMode mode, EngineKind engine = EngineKind::Undo)
{
    setLogSink(+[](LogLevel, const std::string &) {});
    std::size_t committed = 0;

    FaultSweepConfig cfg;
    cfg.mode = mode;
    cfg.seed = 99;
    // A few sampled points per mode keeps this CI-speed; the redo
    // engine's event stream is much shorter (staged writes are DRAM),
    // so it samples more densely to keep the matrix populated.
    cfg.pointStride = engine == EngineKind::Redo ? 7 : 101;

    const FaultSweepResult r = faultSweep(
        [&committed, engine](CrashInjector &inj) {
            workload(inj, committed, engine);
        },
        [&committed](const std::vector<std::uint8_t> &image,
                     std::uint64_t) {
            return contentValid(image, committed);
        },
        cfg);
    setLogSink(nullptr);

    // The whole point of the sweep: every injected corruption is
    // repaired or detected+contained, never silent wrong data — and
    // no damaged image ever disturbs a sibling pool.
    EXPECT_EQ(r.silent, 0u) << crashModeName(mode);
    EXPECT_EQ(r.containment, 0u) << crashModeName(mode);

    EXPECT_GT(r.crashPointsSampled, 0u);
    EXPECT_GT(r.injections, 0u);
    EXPECT_EQ(r.injections,
              r.benign + r.repaired + r.quarantined + r.rejected +
                  r.silent);
    // The matrix must actually exercise both halves of the defense:
    // some damage survives to be contained, some is absorbed.
    EXPECT_GT(r.quarantined + r.rejected, 0u) << crashModeName(mode);
    EXPECT_GT(r.benign + r.repaired, 0u) << crashModeName(mode);
}

} // namespace

TEST(FaultSweep, NoSilentCorruptionDiscardUnfenced)
{
    runFaultSweep(CrashMode::DiscardUnfenced);
}

TEST(FaultSweep, NoSilentCorruptionRetainRandom)
{
    runFaultSweep(CrashMode::RetainRandom);
}

TEST(FaultSweep, NoSilentCorruptionRetainEpoch)
{
    runFaultSweep(CrashMode::RetainEpoch);
}

TEST(FaultSweep, NoSilentCorruptionRetainBoundedStale)
{
    runFaultSweep(CrashMode::RetainBoundedStale);
}

// The same hostile-media matrix over redo-engine images: corrupted
// journals must be repaired (pending replay) or quarantined, never
// replayed into silent wrong data.

TEST(FaultSweepRedo, NoSilentCorruptionDiscardUnfenced)
{
    runFaultSweep(CrashMode::DiscardUnfenced, EngineKind::Redo);
}

TEST(FaultSweepRedo, NoSilentCorruptionRetainRandom)
{
    runFaultSweep(CrashMode::RetainRandom, EngineKind::Redo);
}

TEST(FaultSweepRedo, NoSilentCorruptionRetainEpoch)
{
    runFaultSweep(CrashMode::RetainEpoch, EngineKind::Redo);
}

TEST(FaultSweepRedo, NoSilentCorruptionRetainBoundedStale)
{
    runFaultSweep(CrashMode::RetainBoundedStale, EngineKind::Redo);
}

// The same hostile-media matrix over the elision-enabled IR workload
// (ISSUE 9): crash images of a program whose logging the persistency
// analysis elided — fresh-alloc and dominated-write proofs — are
// corrupted in every kind x region cell; the thinner log must never
// turn damage into silent wrong data.

namespace
{

void
runElidedIrFaultSweep(EngineKind engine)
{
    setLogSink(+[](LogLevel, const std::string &) {});
    const txnir::Program p = txnir::compile(/*elide=*/true);
    ASSERT_EQ(p.persistency.diags.errorCount(), 0u)
        << p.persistency.diags.render();
    ASSERT_GT(p.persistency.logElided, 0u);

    const std::vector<PoolOffset> off = txnir::cellOffsets(
        txnir::run(p, engine, txnir::Tier::Interp));

    for (CrashMode mode :
         {CrashMode::DiscardUnfenced, CrashMode::RetainRandom,
          CrashMode::RetainEpoch, CrashMode::RetainBoundedStale}) {
        SCOPED_TRACE(crashModeName(mode));
        std::size_t committed = 0;
        FaultSweepConfig cfg;
        cfg.mode = mode;
        cfg.seed = 99;
        // The IR workload's event stream is short (elision is the
        // point), so sample densely to keep the matrix populated.
        cfg.pointStride = engine == EngineKind::Redo ? 5 : 17;

        const FaultSweepResult r = faultSweep(
            [&](CrashInjector &inj) {
                txnir::run(p, engine, txnir::Tier::Interp, &inj,
                           &committed);
            },
            [&](const std::vector<std::uint8_t> &image,
                std::uint64_t) {
                return txnir::checkImage(image, off, committed)
                    .empty();
            },
            cfg);

        EXPECT_EQ(r.silent, 0u);
        EXPECT_EQ(r.containment, 0u);
        EXPECT_GT(r.crashPointsSampled, 0u);
        EXPECT_GT(r.injections, 0u);
        EXPECT_EQ(r.injections, r.benign + r.repaired +
                                    r.quarantined + r.rejected +
                                    r.silent);
        EXPECT_GT(r.quarantined + r.rejected, 0u);
        EXPECT_GT(r.benign + r.repaired, 0u);
    }
    setLogSink(nullptr);
}

} // namespace

TEST(FaultSweepElidedIr, NoSilentCorruptionUndoAllSchedules)
{
    runElidedIrFaultSweep(EngineKind::Undo);
}

TEST(FaultSweepElidedIr, NoSilentCorruptionRedoAllSchedules)
{
    runElidedIrFaultSweep(EngineKind::Redo);
}
