/** @file PoolManager::openResilient: all five outcomes, the
 * retry-with-backoff loop over transient media errors, quarantine
 * write-protection, and fleet containment (a damaged image never
 * takes a healthy sibling down). */

#include <gtest/gtest.h>

#include <cstring>

#include "common/fault.hh"
#include "common/logging.hh"
#include "faultinject/transient.hh"
#include "mem/address_space.hh"
#include "nvm/pool_manager.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

std::vector<std::uint8_t>
freshImage()
{
    AddressSpace space;
    PoolManager mgr(space, Placement::Sequential, 1);
    const PoolId id = mgr.createPool("img", 1 << 20);
    mgr.pmalloc(id, 64);
    return mgr.pool(id).backing().raw().toVector();
}

std::vector<std::uint8_t>
midTxnImage()
{
    AddressSpace space;
    PoolManager mgr(space, Placement::Sequential, 1);
    const PoolId id = mgr.createPool("img", 1 << 20);
    Pool &p = mgr.pool(id);
    const PoolOffset a =
        static_cast<PoolOffset>(p.header().arenaStart) + 64;
    Txn txn(p);
    txn.recordWrite(a, 8);
    std::vector<std::uint8_t> image = p.backing().raw().toVector();
    txn.commit();
    return image;
}

Backing
toBacking(const std::vector<std::uint8_t> &image)
{
    Backing b;
    b.assign(image);
    return b;
}

void
poke64(std::vector<std::uint8_t> &image, Bytes off, std::uint64_t v)
{
    std::memcpy(image.data() + off, &v, sizeof(v));
}

class ResilientOpen : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setLogSink(+[](LogLevel, const std::string &) {});
        armTransientOpenFailures(0);
    }
    void TearDown() override
    {
        armTransientOpenFailures(0);
        setLogSink(nullptr);
    }

    AddressSpace space_;
    PoolManager mgr_{space_, Placement::Sequential, 42};
};

} // namespace

TEST_F(ResilientOpen, CleanImageServes)
{
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(freshImage()), "p");
    EXPECT_EQ(rep.outcome, OpenOutcome::Clean);
    ASSERT_NE(rep.id, 0u);
    EXPECT_NE(mgr_.pmalloc(rep.id, 64), 0u);
}

TEST_F(ResilientOpen, PendingLogRecovers)
{
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(midTxnImage()), "p");
    EXPECT_EQ(rep.outcome, OpenOutcome::Recovered);
    ASSERT_NE(rep.id, 0u);
    EXPECT_FALSE(Txn::isActive(mgr_.pool(rep.id)));
    EXPECT_NE(mgr_.pmalloc(rep.id, 64), 0u);
}

TEST_F(ResilientOpen, RepairableDamageRepairs)
{
    auto image = freshImage();
    image[72] ^= 0x10; // identity CRC byte
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(image), "p");
    EXPECT_EQ(rep.outcome, OpenOutcome::Repaired);
    ASSERT_NE(rep.id, 0u);
    EXPECT_NE(mgr_.pmalloc(rep.id, 64), 0u);
}

TEST_F(ResilientOpen, RepairDisabledQuarantinesInstead)
{
    // Garbage free-list head: proven-repairable (rebuilt from the
    // boundary tags), and the header still loads. With repair off the
    // pool must be held for inspection, not silently fixed.
    auto image = freshImage();
    poke64(image, 32, 12345); // freeHead
    ResilientOpenOptions opts;
    opts.repair = false;
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(image), "p", opts);
    EXPECT_EQ(rep.outcome, OpenOutcome::Quarantined);
}

TEST_F(ResilientOpen, UnrepairableDamageQuarantinesReadOnly)
{
    // A torn arena boundary tag: the header is intact so the pool can
    // attach for forensics, but the allocator walk is broken and no
    // repair is proven — read-only quarantine.
    auto image = freshImage();
    std::uint64_t arena;
    std::memcpy(&arena, image.data() + 48, sizeof(arena));
    poke64(image, arena + 8, 0); // first block's boundary tag
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(image), "p");
    EXPECT_EQ(rep.outcome, OpenOutcome::Quarantined);
    ASSERT_NE(rep.id, 0u);

    // Reads still work; every write path is refused with the typed
    // quarantine fault.
    EXPECT_NO_THROW(mgr_.pool(rep.id).header());
    try {
        mgr_.pmalloc(rep.id, 64);
        FAIL() << "write to a quarantined pool was accepted";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolQuarantined);
    }
}

TEST_F(ResilientOpen, UnusableHeaderRejects)
{
    // Magic destroyed AND the identity CRC flipped: the magic restore
    // can no longer be proven against the CRC, so the header is
    // unusable and nothing may attach, not even read-only.
    auto image = freshImage();
    poke64(image, 0, 0xDEADDEADDEADDEADull); // destroy the magic
    image[72] ^= 0x10;                       // ...and its proof
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(image), "p");
    EXPECT_EQ(rep.outcome, OpenOutcome::Rejected);
    EXPECT_EQ(rep.id, 0u);
}

TEST_F(ResilientOpen, DamagedImageNeverTakesTheFleetDown)
{
    // One rejected pool (corrupt geometry) and one quarantined pool
    // (torn tag), then a healthy sibling: the fleet keeps serving.
    auto corrupt = freshImage();
    corrupt[48] ^= 0x20; // arenaStart: header unusable
    EXPECT_EQ(mgr_.openResilient(toBacking(corrupt), "c").outcome,
              OpenOutcome::Rejected);

    auto torn = freshImage();
    std::uint64_t arena;
    std::memcpy(&arena, torn.data() + 48, sizeof(arena));
    poke64(torn, arena + 8, 0);
    EXPECT_EQ(mgr_.openResilient(toBacking(torn), "q").outcome,
              OpenOutcome::Quarantined);

    const PoolId sibling = mgr_.createPool("sibling", 1 << 20);
    EXPECT_NE(mgr_.pmalloc(sibling, 256), 0u);
}

TEST_F(ResilientOpen, TransientMediaErrorsRetryThenSucceed)
{
    armTransientOpenFailures(2);
    ResilientOpenOptions opts;
    opts.maxRetries = 3;
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(freshImage()), "p", opts);
    EXPECT_EQ(rep.outcome, OpenOutcome::Clean);
    EXPECT_EQ(rep.retries, 2u);
    EXPECT_EQ(pendingTransientOpenFailures(), 0u);
    ASSERT_NE(rep.id, 0u);
    EXPECT_NE(mgr_.pmalloc(rep.id, 64), 0u);
}

TEST_F(ResilientOpen, PersistentMediaErrorsExhaustRetriesAndReject)
{
    armTransientOpenFailures(10);
    ResilientOpenOptions opts;
    opts.maxRetries = 3;
    const ResilientOpenReport rep =
        mgr_.openResilient(toBacking(freshImage()), "p", opts);
    EXPECT_EQ(rep.outcome, OpenOutcome::Rejected);
    EXPECT_EQ(rep.diagnosis, FaultKind::MediaError);
    EXPECT_EQ(rep.retries, 3u);
    EXPECT_EQ(rep.id, 0u);
}
