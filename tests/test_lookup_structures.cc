/**
 * @file
 * Targeted tests for the flat lookup structures behind the hot paths:
 * the AddressSpace sorted-vector + MRU region cache and the
 * PoolManager slot table / attached-range index. The structures are
 * caches over authoritative state, so the main hazards are stale MRU
 * entries after map/unmap and stale slots across detach/re-attach --
 * plus plain binary-search bugs. A randomized model check compares
 * every answer against a naive reference.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.hh"
#include "mem/address_space.hh"
#include "nvm/pool_manager.hh"

using namespace upr;

namespace
{

class FlatAddressSpace : public ::testing::Test
{
  protected:
    AddressSpace space;
    Backing backing{1 << 20};
};

TEST_F(FlatAddressSpace, AdjacentRegionsDoNotMerge)
{
    space.map(0x10000, 0x1000, backing, 0, "a");
    space.map(0x11000, 0x1000, backing, 0x1000, "b"); // touches a
    space.map(0x12000, 0x1000, backing, 0x2000, "c"); // touches b

    EXPECT_EQ(space.regionName(0x10fff), "a");
    EXPECT_EQ(space.regionName(0x11000), "b");
    EXPECT_EQ(space.regionName(0x11fff), "b");
    EXPECT_EQ(space.regionName(0x12000), "c");
    EXPECT_EQ(space.regionCount(), 3u);
}

TEST_F(FlatAddressSpace, OverlapRejectedInEveryPosition)
{
    space.map(0x20000, 0x2000, backing, 0, "mid");

    // Tail overlap, head overlap, contained, containing, exact dup.
    EXPECT_THROW(space.map(0x1f000, 0x1001, backing, 0, "t"), Fault);
    EXPECT_THROW(space.map(0x21fff, 0x1000, backing, 0, "h"), Fault);
    EXPECT_THROW(space.map(0x20800, 0x100, backing, 0, "in"), Fault);
    EXPECT_THROW(space.map(0x1f000, 0x4000, backing, 0, "out"), Fault);
    EXPECT_THROW(space.map(0x20000, 0x2000, backing, 0, "dup"), Fault);
    EXPECT_EQ(space.regionCount(), 1u);

    // Abutting on both sides is legal.
    space.map(0x1f000, 0x1000, backing, 0, "lo");
    space.map(0x22000, 0x1000, backing, 0, "hi");
    EXPECT_EQ(space.regionCount(), 3u);
}

TEST_F(FlatAddressSpace, MruInvalidatedByUnmap)
{
    space.map(0x30000, 0x1000, backing, 0, "a");
    space.map(0x40000, 0x1000, backing, 0x1000, "b");

    // Prime the MRU slot on "a", then unmap it. A stale MRU index
    // must not keep answering for the dead region (or, after the
    // vector shifts, misattribute addresses to "b").
    space.write<std::uint32_t>(0x30010, 7);
    EXPECT_EQ(space.regionName(0x30010), "a");
    space.unmap(0x30000);

    EXPECT_FALSE(space.isMapped(0x30010));
    EXPECT_THROW(space.read<std::uint32_t>(0x30010), Fault);
    EXPECT_EQ(space.regionName(0x40010), "b");
}

TEST_F(FlatAddressSpace, MruInvalidatedByMapShift)
{
    space.map(0x50000, 0x1000, backing, 0, "b");
    EXPECT_EQ(space.regionName(0x50010), "b"); // MRU -> index 0

    // Insert a region *before* "b": indices shift right by one.
    space.map(0x48000, 0x1000, backing, 0x1000, "a");
    EXPECT_EQ(space.regionName(0x50010), "b");
    EXPECT_EQ(space.regionName(0x48010), "a");
}

TEST_F(FlatAddressSpace, RandomizedAgainstReferenceModel)
{
    // Reference: base -> (size, name) in a std::map, linear checks.
    std::map<SimAddr, std::pair<Bytes, std::string>> model;
    Rng rng(0xA11CE);

    const auto modelFind = [&](SimAddr a) -> std::string {
        for (const auto &[base, sn] : model)
            if (a - base < sn.first)
                return sn.second;
        return std::string();
    };
    const auto modelOverlaps = [&](SimAddr b, Bytes s) {
        for (const auto &[base, sn] : model)
            if (b < base + sn.first && base < b + s)
                return true;
        return false;
    };

    int mapped = 0;
    for (int step = 0; step < 2000; ++step) {
        const std::uint64_t r = rng.next();
        const SimAddr base =
            0x100000 + (r % 64) * 0x1000; // 64 candidate slots
        const Bytes size = 0x1000 * (1 + (r >> 8) % 3);
        const int op = static_cast<int>((r >> 16) % 8);

        if (op < 3) { // map
            const std::string name = "r" + std::to_string(step);
            if (modelOverlaps(base, size)) {
                EXPECT_THROW(space.map(base, size, backing, 0, name),
                             Fault);
            } else {
                space.map(base, size, backing, 0, name);
                model[base] = {size, name};
                ++mapped;
            }
        } else if (op < 5) { // unmap
            if (model.count(base)) {
                space.unmap(base);
                model.erase(base);
            } else {
                EXPECT_THROW(space.unmap(base), Fault);
            }
        } else { // point queries, including region interiors/edges
            for (int q = 0; q < 4; ++q) {
                const SimAddr a =
                    0x100000 + (rng.next() % (67 * 0x1000));
                ASSERT_EQ(space.regionName(a), modelFind(a))
                    << "step " << step << " va " << std::hex << a;
                ASSERT_EQ(space.isMapped(a), !modelFind(a).empty());
            }
        }
        ASSERT_EQ(space.regionCount(), model.size());
    }
    EXPECT_GT(mapped, 100); // the walk actually exercised map()
}

class PoolSlots : public ::testing::Test
{
  protected:
    AddressSpace space;
    PoolManager mgr{space, Placement::Randomized, 77};
};

TEST_F(PoolSlots, GenerationBumpsOnAttachAndDetach)
{
    EXPECT_EQ(mgr.generationOf(PoolId{42}), 0u); // never seen

    const PoolId id = mgr.createPool("p", 1 << 20);
    const std::uint32_t g0 = mgr.generationOf(id);
    EXPECT_GT(g0, 0u); // createPool attaches

    mgr.detach(id);
    EXPECT_EQ(mgr.generationOf(id), g0 + 1);

    mgr.openPool("p");
    EXPECT_EQ(mgr.generationOf(id), g0 + 2);
}

TEST_F(PoolSlots, DetachReattachCyclesStayCoherent)
{
    const PoolId id = mgr.createPool("cycler", 1 << 20);
    const SimAddr va0 = mgr.pmalloc(id, 64);
    const auto [rid, off] = mgr.va2ra(va0);
    EXPECT_EQ(rid, id);

    SimAddr prev_base = mgr.baseOf(id);
    for (int i = 0; i < 6; ++i) {
        mgr.detach(id);
        // The fast path must not serve a translation for a detached
        // pool from its (stale) slot.
        EXPECT_THROW(mgr.ra2va(id, off), Fault);
        EXPECT_THROW(mgr.va2ra(prev_base + off), Fault);

        mgr.openPool("cycler");
        const SimAddr base = mgr.baseOf(id);
        // Same relative address, new VA after relocation.
        EXPECT_EQ(mgr.ra2va(id, off), base + off);
        EXPECT_EQ(mgr.va2ra(base + off),
                  (std::pair<PoolId, PoolOffset>{id, off}));
        prev_base = base;
    }
}

TEST_F(PoolSlots, DestroyedPoolKeepsFaultingAfterSlotReuse)
{
    const PoolId a = mgr.createPool("a", 1 << 20);
    mgr.ra2va(a, 128); // prime the slot
    mgr.destroy(a);

    EXPECT_FALSE(mgr.exists(a));
    try {
        mgr.ra2va(a, 128);
        FAIL() << "expected Fault";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::BadRelativeAddress);
    }

    // New pools must not resurrect the destroyed ID's translations.
    const PoolId b = mgr.createPool("b", 1 << 20);
    EXPECT_NE(a, b);
    EXPECT_THROW(mgr.ra2va(a, 128), Fault);
    EXPECT_EQ(mgr.ra2va(b, 128), mgr.baseOf(b) + 128);
}

TEST_F(PoolSlots, Va2RaRandomizedAgainstAttachedRanges)
{
    // Several pools, some detached, then compare va2ra against a
    // linear scan over attachedRanges() for a spray of addresses.
    std::vector<PoolId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(
            mgr.createPool("p" + std::to_string(i), 1 << 18));
    mgr.detach(ids[2]);
    mgr.detach(ids[5]);

    const std::vector<AttachedRange> ranges = mgr.attachedRanges();
    EXPECT_EQ(ranges.size(), 6u);
    for (std::size_t i = 1; i < ranges.size(); ++i)
        EXPECT_LT(ranges[i - 1].base, ranges[i].base); // sorted

    Rng rng(0xBEEF);
    for (int q = 0; q < 4000; ++q) {
        // Mix of in-pool addresses and NVM-half strays.
        SimAddr va;
        if (q % 3 == 0) {
            va = Layout::kNvmBase + rng.next() % (1ULL << 30);
        } else {
            const AttachedRange &r = ranges[rng.next() % ranges.size()];
            va = r.base + rng.next() % r.size;
        }

        const AttachedRange *home = nullptr;
        for (const AttachedRange &r : ranges)
            if (va - r.base < r.size)
                home = &r;

        if (home) {
            const auto [id, off] = mgr.va2ra(va);
            ASSERT_EQ(id, home->id);
            ASSERT_EQ(off, va - home->base);
        } else {
            ASSERT_THROW(mgr.va2ra(va), Fault);
        }
    }
}

} // namespace
