/** @file Unit + property tests for the volatile heap allocator. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"
#include "mem/vmalloc.hh"

using namespace upr;

class VmallocTest : public ::testing::Test
{
  protected:
    AddressSpace space;
    VolatileHeap heap{space};
};

TEST_F(VmallocTest, AllocateGivesMappedDramAddress)
{
    const SimAddr p = heap.allocate(64);
    EXPECT_FALSE(Layout::isNvm(p));
    EXPECT_TRUE(space.isMapped(p, 64));
    space.write<std::uint64_t>(p, 0x1122334455667788ULL);
    EXPECT_EQ(space.read<std::uint64_t>(p), 0x1122334455667788ULL);
}

TEST_F(VmallocTest, AlignmentRespected)
{
    for (Bytes align : {16ULL, 64ULL, 256ULL, 4096ULL}) {
        const SimAddr p = heap.allocate(10, align);
        EXPECT_EQ(p % align, 0u) << "align " << align;
    }
}

TEST_F(VmallocTest, DistinctBlocksDoNotOverlap)
{
    std::vector<std::pair<SimAddr, Bytes>> blocks;
    for (int i = 0; i < 100; ++i)
        blocks.emplace_back(heap.allocate(48), 48);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (std::size_t j = i + 1; j < blocks.size(); ++j) {
            const auto [a, an] = blocks[i];
            const auto [b, bn] = blocks[j];
            EXPECT_TRUE(a + an <= b || b + bn <= a);
        }
    }
}

TEST_F(VmallocTest, FreeAndReuse)
{
    const SimAddr p = heap.allocate(128);
    heap.deallocate(p);
    const SimAddr q = heap.allocate(128);
    EXPECT_EQ(p, q); // first-fit reuses the freed block
}

TEST_F(VmallocTest, FreeNullIsNoop)
{
    EXPECT_NO_THROW(heap.deallocate(kNullAddr));
}

TEST_F(VmallocTest, DoubleFreePanics)
{
    const SimAddr p = heap.allocate(16);
    heap.deallocate(p);
    EXPECT_DEATH(heap.deallocate(p), "non-allocated");
}

TEST_F(VmallocTest, ZeroByteAllocationWorks)
{
    const SimAddr p = heap.allocate(0);
    EXPECT_NE(p, kNullAddr);
    heap.deallocate(p);
}

TEST_F(VmallocTest, GrowsBeyondInitialSize)
{
    // Initial mapping is 1 MiB; allocate several MiB total.
    std::vector<SimAddr> ptrs;
    for (int i = 0; i < 40; ++i)
        ptrs.push_back(heap.allocate(128 * 1024));
    for (SimAddr p : ptrs)
        space.write<std::uint8_t>(p, 0xAB);
    EXPECT_EQ(heap.liveCount(), 40u);
}

TEST_F(VmallocTest, CoalescingAllowsBigBlockAfterFrees)
{
    // Fill with small blocks, free them all, then a block the size of
    // (almost) the whole initial heap must fit without growth.
    std::vector<SimAddr> ptrs;
    for (int i = 0; i < 1000; ++i)
        ptrs.push_back(heap.allocate(512));
    for (SimAddr p : ptrs)
        heap.deallocate(p);
    EXPECT_EQ(heap.liveCount(), 0u);
    EXPECT_NO_THROW(heap.allocate(VolatileHeap::kInitialSize / 2));
}

TEST_F(VmallocTest, BytesInUseTracksLiveData)
{
    const auto &st = heap.stats();
    EXPECT_EQ(st.lookup("bytesInUse"), 0u);
    // Sizes round up to 16 (allocator granularity): 100->112,
    // 200->208.
    const SimAddr a = heap.allocate(100);
    const SimAddr b = heap.allocate(200);
    EXPECT_EQ(st.lookup("bytesInUse"), 320u);
    heap.deallocate(a);
    EXPECT_EQ(st.lookup("bytesInUse"), 208u);
    heap.deallocate(b);
    EXPECT_EQ(st.lookup("bytesInUse"), 0u);
}

/** Randomized property test: alloc/free interleaving with integrity. */
TEST_F(VmallocTest, RandomizedStressKeepsDataIntact)
{
    Rng rng(42);
    struct Block
    {
        SimAddr addr;
        Bytes size;
        std::uint8_t fill;
    };
    std::vector<Block> live;

    for (int step = 0; step < 5000; ++step) {
        const bool do_alloc =
            live.empty() || rng.nextBounded(100) < 60;
        if (do_alloc) {
            const Bytes n = 1 + rng.nextBounded(2048);
            const SimAddr p = heap.allocate(n);
            const auto fill = static_cast<std::uint8_t>(step & 0xff);
            for (Bytes i = 0; i < n; ++i)
                space.write<std::uint8_t>(p + i, fill);
            live.push_back({p, n, fill});
        } else {
            const std::size_t idx = rng.nextBounded(live.size());
            const Block b = live[idx];
            // Verify contents before freeing.
            for (Bytes i = 0; i < b.size; i += 97) {
                ASSERT_EQ(space.read<std::uint8_t>(b.addr + i), b.fill)
                    << "corruption at step " << step;
            }
            heap.deallocate(b.addr);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    EXPECT_EQ(heap.liveCount(), live.size());
}
