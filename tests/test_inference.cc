/** @file Tests for pointer-kind inference and check insertion. */

#include <gtest/gtest.h>

#include "compiler/check_insertion.hh"
#include "compiler/ir_parser.hh"
#include "compiler/type_inference.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

/** Kind of the register named @p name in @p fn. */
PtrKind
kindOfName(const InferenceResult &inf, const Function &fn,
           const std::string &name)
{
    for (ValueId v = 0; v < fn.numValues(); ++v) {
        if (fn.valueNames[v] == name)
            return inf.kindOf(fn, v);
    }
    upr_panic("no value %%%s", name.c_str());
}

} // namespace

TEST(Inference, SeedsFromAllocationFunctions)
{
    Module mod = parseModule(R"(
func @f() {
entry:
  %a = alloca 16
  %m = malloc 32
  %p = pmalloc 64
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("f");
    EXPECT_EQ(kindOfName(inf, fn, "a"), PtrKind::VaDram);
    EXPECT_EQ(kindOfName(inf, fn, "m"), PtrKind::VaDram);
    EXPECT_EQ(kindOfName(inf, fn, "p"), PtrKind::Ra);
}

TEST(Inference, GepPreservesKind)
{
    Module mod = parseModule(R"(
func @f() {
entry:
  %p = pmalloc 64
  %q = gep %p, 8
  %m = malloc 32
  %n = gep %m, 8
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("f");
    EXPECT_EQ(kindOfName(inf, fn, "q"), PtrKind::Ra);
    EXPECT_EQ(kindOfName(inf, fn, "n"), PtrKind::VaDram);
}

TEST(Inference, LoadedPointersAreUnknown)
{
    Module mod = parseModule(R"(
func @f() {
entry:
  %p = pmalloc 64
  %q = load.ptr %p
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    EXPECT_EQ(kindOfName(inf, mod.get("f"), "q"), PtrKind::Unknown);
}

TEST(Inference, PhiJoinsKinds)
{
    Module mod = parseModule(R"(
func @f(%c: i64) {
entry:
  %p = pmalloc 64
  %m = malloc 64
  br %c, a, b
a:
  jmp out
b:
  jmp out
out:
  %same = phi.ptr [a, %p], [b, %p]
  %mixed = phi.ptr [a, %p], [b, %m]
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("f");
    EXPECT_EQ(kindOfName(inf, fn, "same"), PtrKind::Ra);
    EXPECT_EQ(kindOfName(inf, fn, "mixed"), PtrKind::Unknown);
}

TEST(Inference, LibraryParamsAreUnknown)
{
    // The paper's central point: a library function may receive
    // persistent objects in one call and volatile in another.
    Module mod = parseModule(R"(
func @lib(%p: ptr) {
entry:
  %v = load.i64 %p
  ret
}
)");
    const auto inf = inferPointerKinds(mod, true);
    EXPECT_EQ(kindOfName(inf, mod.get("lib"), "p"),
              PtrKind::Unknown);
}

TEST(Inference, WholeProgramParamsFromCallSites)
{
    Module mod = parseModule(R"(
func @use(%p: ptr) {
entry:
  %v = load.i64 %p
  ret
}

func @main() {
entry:
  %a = pmalloc 16
  call @use(%a)
  %b = pmalloc 32
  call @use(%b)
  ret
}
)");
    // Whole-program: both call sites pass Ra, so the parameter is Ra.
    const auto inf = inferPointerKinds(mod, false);
    EXPECT_EQ(kindOfName(inf, mod.get("use"), "p"), PtrKind::Ra);
}

TEST(Inference, MixedCallSitesMakeParamUnknown)
{
    Module mod = parseModule(R"(
func @use(%p: ptr) {
entry:
  %v = load.i64 %p
  ret
}

func @main() {
entry:
  %a = pmalloc 16
  call @use(%a)
  %b = malloc 32
  call @use(%b)
  ret
}
)");
    const auto inf = inferPointerKinds(mod, false);
    EXPECT_EQ(kindOfName(inf, mod.get("use"), "p"),
              PtrKind::Unknown);
}

TEST(Inference, ReturnKindsPropagate)
{
    Module mod = parseModule(R"(
func @make() -> ptr {
entry:
  %p = pmalloc 16
  ret %p
}

func @main() {
entry:
  %q = call.ptr @make()
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    EXPECT_EQ(kindOfName(inf, mod.get("main"), "q"), PtrKind::Ra);
}

TEST(Inference, UnknownParamMeetsKnownKindsAcrossBranches)
{
    // A phi joining an unknown-kind parameter with each static kind
    // must stay Unknown — the parameter may be any form at runtime,
    // so no branch arm can sharpen the join.
    Module mod = parseModule(R"(
func @lib(%u: ptr, %c: i64) -> i64 {
entry:
  %p = pmalloc 16
  %m = malloc 16
  br %c, a, b
a:
  jmp out
b:
  jmp out
out:
  %j1 = phi.ptr [a, %u], [b, %p]
  %j2 = phi.ptr [a, %u], [b, %m]
  %j3 = phi.ptr [a, %p], [b, %p]
  %zero = const 0
  ret %zero
}
)");
    const auto inf = inferPointerKinds(mod, true);
    const Function &fn = mod.get("lib");
    EXPECT_EQ(kindOfName(inf, fn, "u"), PtrKind::Unknown);
    EXPECT_EQ(kindOfName(inf, fn, "j1"), PtrKind::Unknown);
    EXPECT_EQ(kindOfName(inf, fn, "j2"), PtrKind::Unknown);
    // Joining two same-kind operands keeps the kind.
    EXPECT_EQ(kindOfName(inf, fn, "j3"), PtrKind::Ra);
}

TEST(Inference, LoopPhiReachesFixpoint)
{
    // The loop-carried pointer starts Ra (head) and every iteration
    // feeds back a gep of itself, so the fixpoint keeps Ra; the
    // second phi mixes in a DRAM pointer on the back edge and must
    // converge to Unknown without oscillating.
    Module mod = parseModule(R"(
func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  %head = pmalloc 16
  %dram = malloc 16
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %cur = phi.ptr [entry, %head], [body, %next]
  %mix = phi.ptr [entry, %head], [body, %dram]
  %cont = lt %i, %n
  br %cont, body, exit
body:
  %one = const 1
  %inext = add %i, %one
  %next = gep %cur, 0
  jmp loop
exit:
  ret %zero
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("main");
    EXPECT_EQ(kindOfName(inf, fn, "cur"), PtrKind::Ra);
    EXPECT_EQ(kindOfName(inf, fn, "next"), PtrKind::Ra);
    EXPECT_EQ(kindOfName(inf, fn, "mix"), PtrKind::Unknown);
}

TEST(Inference, LoopThroughCallReachesFixpoint)
{
    // Interprocedural loop: @step's parameter kind depends on its
    // own return value through @main's loop. The call-graph fixpoint
    // must settle at Ra (only Ra flows in from every site).
    Module mod = parseModule(R"(
func @step(%p: ptr) -> ptr {
entry:
  %q = gep %p, 0
  ret %q
}

func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  %head = pmalloc 16
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %cur = phi.ptr [entry, %head], [body, %next]
  %cont = lt %i, %n
  br %cont, body, exit
body:
  %one = const 1
  %inext = add %i, %one
  %next = call.ptr @step(%cur)
  jmp loop
exit:
  ret %zero
}
)");
    const auto inf = inferPointerKinds(mod, false);
    EXPECT_EQ(kindOfName(inf, mod.get("step"), "p"), PtrKind::Ra);
    EXPECT_EQ(kindOfName(inf, mod.get("main"), "next"), PtrKind::Ra);
}

TEST(KindLattice, JoinRules)
{
    EXPECT_EQ(joinKind(PtrKind::NoInfo, PtrKind::Ra), PtrKind::Ra);
    EXPECT_EQ(joinKind(PtrKind::Ra, PtrKind::Ra), PtrKind::Ra);
    EXPECT_EQ(joinKind(PtrKind::Ra, PtrKind::VaDram),
              PtrKind::Unknown);
    EXPECT_EQ(joinKind(PtrKind::Unknown, PtrKind::Ra),
              PtrKind::Unknown);
    EXPECT_EQ(joinKind(PtrKind::NoInfo, PtrKind::NoInfo),
              PtrKind::NoInfo);
}

TEST(CheckInsertion, StaticKindsNeedNoChecks)
{
    Module mod = parseModule(R"(
func @f() {
entry:
  %p = pmalloc 64
  %v = load.i64 %p
  %m = malloc 64
  %w = load.i64 %m
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf);
    EXPECT_EQ(plan.remainingSites, 0u);
    EXPECT_EQ(plan.totalSites, 2u);
    EXPECT_EQ(plan.eliminatedFraction(), 1.0);

    // The pmalloc'd load gets a statically planted conversion.
    const FunctionPlan &fp = plan.perFunction.at("f");
    EXPECT_TRUE(fp.at(0, 1).addrStaticConvert);
    EXPECT_FALSE(fp.at(0, 1).addrDynamic);
    EXPECT_FALSE(fp.at(0, 3).addrStaticConvert); // VaDram load
}

TEST(CheckInsertion, UnknownParamsKeepChecks)
{
    Module mod = parseModule(R"(
func @lib(%p: ptr, %n: ptr) {
entry:
  %same = eq %p, %n
  br %same, out, doit
doit:
  %slot = gep %p, 8
  storep %n, %slot
  jmp out
out:
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf);
    // eq: 2 sites; storep: addr + dest + value = 3 sites.
    EXPECT_EQ(plan.totalSites, 5u);
    EXPECT_EQ(plan.remainingSites, 5u);
}

TEST(CheckInsertion, DisabledInferenceMakesEverythingDynamic)
{
    Module mod = parseModule(R"(
func @f() {
entry:
  %p = pmalloc 64
  %v = load.i64 %p
  ret
}
)");
    const CheckPlan plan = insertChecks(mod, nullptr);
    EXPECT_EQ(plan.totalSites, plan.remainingSites);
    EXPECT_EQ(plan.eliminatedFraction(), 0.0);
}

TEST(CheckInsertion, PartialEliminationFraction)
{
    // One statically known load + one unknown load: 50% eliminated.
    Module mod = parseModule(R"(
func @f(%u: ptr) {
entry:
  %p = pmalloc 64
  %a = load.i64 %p
  %b = load.i64 %u
  ret
}
)");
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf);
    EXPECT_EQ(plan.totalSites, 2u);
    EXPECT_EQ(plan.remainingSites, 1u);
    EXPECT_DOUBLE_EQ(plan.eliminatedFraction(), 0.5);
}
