/** @file Tests for the Hash container across all four versions. */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.hh"
#include "containers/hash_map.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 6;
    return cfg;
}

using Map = HashMap<std::uint64_t, std::uint64_t>;

} // namespace

class HashMapVersions : public ::testing::TestWithParam<Version>
{
  protected:
    HashMapVersions()
        : rt(makeConfig(GetParam())), scope(rt),
          pool(rt.createPool("p", 16 << 20)),
          env(MemEnv::persistentEnv(rt, pool))
    {}

    Runtime rt;
    RuntimeScope scope;
    PoolId pool;
    MemEnv env;
};

TEST_P(HashMapVersions, InsertFindBasics)
{
    Map map(env);
    EXPECT_TRUE(map.insert(1, 100));
    EXPECT_TRUE(map.insert(2, 200));
    EXPECT_FALSE(map.insert(1, 111)); // update
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.find(1).value(), 111u);
    EXPECT_EQ(map.find(2).value(), 200u);
    EXPECT_FALSE(map.find(3).has_value());
    EXPECT_TRUE(map.contains(2));
    EXPECT_FALSE(map.contains(99));
    map.validate();
}

TEST_P(HashMapVersions, EraseBehaviour)
{
    Map map(env);
    map.insert(10, 1);
    map.insert(20, 2);
    EXPECT_TRUE(map.erase(10));
    EXPECT_FALSE(map.erase(10));
    EXPECT_FALSE(map.contains(10));
    EXPECT_TRUE(map.contains(20));
    EXPECT_EQ(map.size(), 1u);
    map.validate();
}

TEST_P(HashMapVersions, RehashGrowsBuckets)
{
    Map map(env);
    const std::uint64_t before = map.bucketCount();
    for (std::uint64_t i = 0; i < 200; ++i)
        map.insert(i, i);
    EXPECT_GT(map.bucketCount(), before);
    EXPECT_EQ(map.size(), 200u);
    for (std::uint64_t i = 0; i < 200; ++i)
        ASSERT_EQ(map.find(i).value(), i);
    map.validate();
}

TEST_P(HashMapVersions, CollidingKeysChainCorrectly)
{
    // Keys equal mod any bucket count collide only if the hasher
    // sends them to one bucket; force collisions with a degenerate
    // hasher instead.
    struct OneBucket
    {
        std::uint64_t operator()(std::uint64_t) const { return 0; }
    };
    HashMap<std::uint64_t, std::uint64_t, OneBucket> map(env);
    for (std::uint64_t i = 0; i < 30; ++i)
        map.insert(i, i * 7);
    for (std::uint64_t i = 0; i < 30; ++i)
        ASSERT_EQ(map.find(i).value(), i * 7);
    // Erase from the middle of the single chain.
    EXPECT_TRUE(map.erase(15));
    EXPECT_FALSE(map.contains(15));
    EXPECT_EQ(map.size(), 29u);
    map.validate();
}

TEST_P(HashMapVersions, ForEachVisitsAllOnce)
{
    Map map(env);
    for (std::uint64_t i = 0; i < 64; ++i)
        map.insert(i, i + 1);
    std::unordered_map<std::uint64_t, std::uint64_t> seen;
    map.forEach([&](std::uint64_t k, std::uint64_t v) {
        EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate " << k;
    });
    EXPECT_EQ(seen.size(), 64u);
    for (auto [k, v] : seen)
        EXPECT_EQ(v, k + 1);
}

TEST_P(HashMapVersions, ClearThenReuse)
{
    Map map(env);
    for (std::uint64_t i = 0; i < 100; ++i)
        map.insert(i, i);
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(5));
    map.insert(5, 55);
    EXPECT_EQ(map.find(5).value(), 55u);
    map.validate();
}

TEST_P(HashMapVersions, RandomizedAgainstOracle)
{
    Map map(env);
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    Rng rng(99);

    for (int step = 0; step < 3000; ++step) {
        const std::uint64_t key = rng.nextBounded(500);
        const std::uint64_t op = rng.nextBounded(100);
        if (op < 50) {
            const std::uint64_t v = rng.next();
            EXPECT_EQ(map.insert(key, v), oracle.emplace(key, v).second);
            oracle[key] = v;
        } else if (op < 80) {
            auto got = map.find(key);
            auto it = oracle.find(key);
            if (it == oracle.end()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, it->second);
            }
        } else {
            EXPECT_EQ(map.erase(key), oracle.erase(key) == 1);
        }
    }
    EXPECT_EQ(map.size(), oracle.size());
    map.validate();
}

TEST_P(HashMapVersions, SurvivesPoolRelocation)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();

    Map map(env);
    for (std::uint64_t i = 0; i < 128; ++i)
        map.insert(i, i * i);

    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(map.header().bits()));
    rt.pools().detach(pool);
    rt.pools().openPool("p");

    Ptr<Map::Header> hdr = Ptr<Map::Header>::fromBits(
        PtrRepr::makeRelative(pool, rt.pools().pool(pool).rootOff()));
    Map reopened(env, hdr);
    EXPECT_EQ(reopened.size(), 128u);
    for (std::uint64_t i = 0; i < 128; ++i)
        ASSERT_EQ(reopened.find(i).value(), i * i);
    reopened.validate();
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, HashMapVersions,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });
