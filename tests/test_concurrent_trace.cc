/** @file TraceRing under concurrency (ISSUE 10 satellite): clear()
 * must be safe against racing writers — the old rewind-the-head
 * design could hand out already-claimed slot stamps again and let a
 * racing append tear a slot. The floor-based clear keeps the head
 * monotone, so a stress of writers against repeated clears must never
 * surface a torn event. */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace_ring.hh"

using namespace upr::obs;

TEST(TraceRingFloor, ClearResetsTheReaderView)
{
    TraceRing ring;
    ring.append(EventKind::TxnBegin, 1, 0);
    ring.append(EventKind::TxnCommit, 1, 1);
    ASSERT_EQ(ring.appended(), 2u);

    ring.clear();
    EXPECT_EQ(ring.appended(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());

    // Post-clear sequence numbers restart at 0 for the reader.
    ring.append(EventKind::TxnAbort, 9, 9);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].kind, EventKind::TxnAbort);
}

TEST(TraceRingFloor, WraparoundAfterClearCountsDropsFromTheFloor)
{
    TraceRing ring;
    ring.append(EventKind::TxnBegin, 0, 0);
    ring.clear();

    const std::uint64_t n = TraceRing::kCapacity + 123;
    for (std::uint64_t i = 0; i < n; ++i)
        ring.append(EventKind::FaultRaised, i, i);
    EXPECT_EQ(ring.appended(), n);
    EXPECT_EQ(ring.dropped(), 123u);

    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), TraceRing::kCapacity);
    EXPECT_EQ(events.front().seq, 123u);
    EXPECT_EQ(events.back().seq, n - 1);
}

TEST(TraceRingFloor, DoubleClearIsIdempotent)
{
    TraceRing ring;
    ring.append(EventKind::PoolOpen, 1, 0);
    ring.clear();
    ring.clear();
    EXPECT_EQ(ring.appended(), 0u);
    ring.append(EventKind::PoolOpen, 2, 0);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[0].a, 2u);
}

/**
 * The regression stress: writer threads hammer append() while the
 * main thread clears repeatedly. Every event an append writes has
 * a == b; if clear() ever recycled a claimed stamp, a reader would
 * see a half-written (torn) slot where a != b. Snapshots taken both
 * during and after the storm must only ever contain intact events
 * with strictly increasing sequence numbers.
 */
TEST(TraceRingConcurrency, WritersVersusClearNeverTearAnEvent)
{
    TraceRing ring;
    constexpr unsigned kWriters = 4;
    constexpr std::uint64_t kPerWriter = 40'000;

    const auto checkIntact = [](const std::vector<TraceRingEvent> &evs) {
        std::uint64_t prev_seq = 0;
        bool first = true;
        for (const TraceRingEvent &e : evs) {
            ASSERT_EQ(e.a, e.b) << "torn slot surfaced at seq "
                                << e.seq;
            if (!first) {
                ASSERT_GT(e.seq, prev_seq);
            }
            prev_seq = e.seq;
            first = false;
        }
    };

    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kWriters; ++t) {
        writers.emplace_back([&ring, t] {
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                const std::uint64_t payload =
                    (std::uint64_t{t} << 32) | i;
                ring.append(EventKind::FaultRaised, payload, payload);
            }
        });
    }

    // The clear storm, with interleaved snapshot checks.
    for (int round = 0; round < 200; ++round) {
        checkIntact(ring.snapshot());
        ring.clear();
        std::this_thread::yield();
    }
    for (std::thread &w : writers)
        w.join();

    // Post-storm: still intact, and the view is bounded by capacity.
    const auto final_events = ring.snapshot();
    checkIntact(final_events);
    EXPECT_LE(final_events.size(), TraceRing::kCapacity);
    EXPECT_LE(ring.appended(),
              ring.dropped() + TraceRing::kCapacity);

    // The ring still works normally after the storm.
    ring.clear();
    ring.append(EventKind::TxnCommit, 5, 5);
    const auto after = ring.snapshot();
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].seq, 0u);
}
