/** @file Unit tests for the cache model and three-level hierarchy. */

#include <gtest/gtest.h>

#include "arch/cache.hh"
#include "mem/address_space.hh"

using namespace upr;

TEST(Cache, ColdMissThenHit)
{
    Cache c("t", 32 * 1024, 8, 64);
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    // Same line, different byte: still a hit.
    EXPECT_TRUE(c.access(0x103F, false));
    // Next line: miss.
    EXPECT_FALSE(c.access(0x1040, false));
}

TEST(Cache, LineBase)
{
    Cache c("t", 1024, 2, 64);
    EXPECT_EQ(c.lineBase(0x1234), 0x1200u);
    EXPECT_EQ(c.lineBase(0x1240), 0x1240u);
}

TEST(Cache, CapacityEviction)
{
    // 1 KiB, 2-way, 64 B lines -> 8 sets. Two lines mapping to set 0
    // fit; a third evicts the LRU.
    Cache c("t", 1024, 2, 64);
    const SimAddr stride = 8 * 64; // same set, different tag
    c.access(0 * stride, false);
    c.access(1 * stride, false);
    c.access(2 * stride, false);          // evicts line 0
    EXPECT_FALSE(c.access(0, false));     // miss again
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c("t", 1024, 2, 64);
    const SimAddr stride = 8 * 64;
    c.access(0, true); // dirty
    c.access(1 * stride, false);
    c.access(2 * stride, false); // evicts dirty line 0
    EXPECT_EQ(c.stats().lookup("writebacks"), 1u);
    // Clean eviction adds none.
    c.access(3 * stride, false); // evicts clean line stride*1
    EXPECT_EQ(c.stats().lookup("writebacks"), 1u);
}

TEST(Cache, FlushDropsEverything)
{
    Cache c("t", 1024, 2, 64);
    c.access(0x40, false);
    c.flush();
    EXPECT_FALSE(c.access(0x40, false));
}

TEST(CacheHierarchy, LatencyLadder)
{
    MachineParams p;
    CacheHierarchy h(p);
    CacheHierarchy::ServedBy served;

    // Cold DRAM access walks the whole ladder.
    const Cycles cold =
        h.access(0x2000, false, false, &served);
    EXPECT_EQ(served, CacheHierarchy::ServedBy::Dram);
    EXPECT_EQ(cold, p.l1Latency + p.l2Latency + p.l3Latency +
                    p.dramLatency);

    // Immediately after: L1 hit.
    const Cycles hot = h.access(0x2000, false, false, &served);
    EXPECT_EQ(served, CacheHierarchy::ServedBy::L1);
    EXPECT_EQ(hot, p.l1Latency);
}

TEST(CacheHierarchy, NvmCostsMoreThanDram)
{
    MachineParams p;
    CacheHierarchy h(p);
    const Cycles dram = h.access(0x4000, false, false);
    const Cycles nvm = h.access(Layout::kNvmBase + 0x4000, false, true);
    EXPECT_EQ(nvm - dram, p.nvmLatency - p.dramLatency);
}

TEST(CacheHierarchy, L2ServesAfterL1Eviction)
{
    MachineParams p;
    p.l1Size = 1024;   // tiny L1: 8 sets x 2 ways
    p.l1Ways = 2;
    CacheHierarchy h(p);
    CacheHierarchy::ServedBy served;

    // Three conflicting lines in L1 set 0; all land in L2 too.
    const SimAddr stride = 8 * 64;
    h.access(0 * stride, false, false);
    h.access(1 * stride, false, false);
    h.access(2 * stride, false, false);

    // Line 0 fell out of L1 but is still in L2.
    const Cycles lat = h.access(0, false, false, &served);
    EXPECT_EQ(served, CacheHierarchy::ServedBy::L2);
    EXPECT_EQ(lat, p.l1Latency + p.l2Latency);
}
