/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.hh"

using namespace upr;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(99);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng r(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.nextBounded(1), 0ULL);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    // Mean of U[0,1) should be near 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng r(11);
    int buckets[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.nextBounded(10)];
    for (int b : buckets) {
        EXPECT_GT(b, n / 10 - n / 100);
        EXPECT_LT(b, n / 10 + n / 100);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SequencesWithManySeedsDistinct)
{
    std::set<std::uint64_t> firsts;
    for (std::uint64_t s = 0; s < 500; ++s)
        firsts.insert(Rng(s).next());
    EXPECT_EQ(firsts.size(), 500u);
}
