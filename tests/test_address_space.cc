/** @file Unit tests for the simulated address space. */

#include <gtest/gtest.h>

#include "mem/address_space.hh"

using namespace upr;

TEST(Layout, NvmBitSplitsTheSpace)
{
    EXPECT_FALSE(Layout::isNvm(0));
    EXPECT_FALSE(Layout::isNvm(Layout::kNvmBase - 1));
    EXPECT_TRUE(Layout::isNvm(Layout::kNvmBase));
    EXPECT_TRUE(Layout::isNvm(Layout::kVaEnd - 1));
    EXPECT_EQ(Layout::kNvmBase, 1ULL << 47);
    EXPECT_EQ(Layout::kVaEnd, 1ULL << 48);
}

class AddressSpaceTest : public ::testing::Test
{
  protected:
    AddressSpace space;
    Backing backing{64 * 1024};
};

TEST_F(AddressSpaceTest, MapReadWriteRoundTrip)
{
    space.map(0x10000, 4096, backing, 0, "r0");
    space.write<std::uint64_t>(0x10010, 0xabcdef);
    EXPECT_EQ(space.read<std::uint64_t>(0x10010), 0xabcdefULL);
}

TEST_F(AddressSpaceTest, UnmappedAccessThrows)
{
    EXPECT_THROW(space.read<int>(0x999), Fault);
    try {
        space.read<int>(0x999);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::UnmappedAccess);
    }
}

TEST_F(AddressSpaceTest, AccessPastRegionEndThrows)
{
    space.map(0x10000, 4096, backing, 0, "r0");
    // Last byte is readable, but an 8-byte read straddling the end
    // must throw.
    EXPECT_NO_THROW(space.read<std::uint8_t>(0x10FFF));
    EXPECT_THROW(space.read<std::uint64_t>(0x10FFC), Fault);
}

TEST_F(AddressSpaceTest, OverlappingMapThrows)
{
    space.map(0x10000, 4096, backing, 0, "r0");
    EXPECT_THROW(space.map(0x10800, 4096, backing, 4096, "r1"), Fault);
    EXPECT_THROW(space.map(0xF000, 4097, backing, 0, "r2"), Fault);
    // Adjacent is fine.
    EXPECT_NO_THROW(space.map(0x11000, 4096, backing, 4096, "r3"));
}

TEST_F(AddressSpaceTest, UnmapRemovesRegion)
{
    space.map(0x10000, 4096, backing, 0, "r0");
    space.write<int>(0x10000, 7);
    space.unmap(0x10000);
    EXPECT_THROW(space.read<int>(0x10000), Fault);
    EXPECT_THROW(space.unmap(0x10000), Fault);
}

TEST_F(AddressSpaceTest, BackingSurvivesRemapAtNewAddress)
{
    space.map(0x10000, 4096, backing, 0, "r0");
    space.write<std::uint32_t>(0x10020, 0xfeedface);
    space.unmap(0x10000);
    // Same backing, different virtual address: the relocation story.
    space.map(0x40000, 4096, backing, 0, "r0'");
    EXPECT_EQ(space.read<std::uint32_t>(0x40020), 0xfeedfaceU);
}

TEST_F(AddressSpaceTest, TwoRegionsOneBacking)
{
    space.map(0x10000, 4096, backing, 0, "lo");
    space.map(0x20000, 4096, backing, 4096, "hi");
    space.write<int>(0x10000, 1);
    space.write<int>(0x20000, 2);
    EXPECT_EQ(space.read<int>(0x10000), 1);
    EXPECT_EQ(space.read<int>(0x20000), 2);
    EXPECT_EQ(space.regionCount(), 2u);
    EXPECT_EQ(space.regionName(0x20010), "hi");
    EXPECT_EQ(space.regionName(0x5), "");
}

TEST_F(AddressSpaceTest, IsMappedChecksWholeRange)
{
    space.map(0x10000, 4096, backing, 0, "r0");
    EXPECT_TRUE(space.isMapped(0x10000, 4096));
    EXPECT_FALSE(space.isMapped(0x10000, 4097));
    EXPECT_FALSE(space.isMapped(0xFFFF, 2));
    EXPECT_FALSE(space.isMapped(0x99999));
}

TEST_F(AddressSpaceTest, MappingInNvmHalf)
{
    const SimAddr base = Layout::kNvmBase + 0x10000;
    space.map(base, 4096, backing, 0, "pool");
    space.write<std::uint64_t>(base + 8, 42);
    EXPECT_EQ(space.read<std::uint64_t>(base + 8), 42u);
    EXPECT_TRUE(Layout::isNvm(base + 8));
}

TEST_F(AddressSpaceTest, BytesRoundTrip)
{
    space.map(0x10000, 4096, backing, 0, "r0");
    const char msg[] = "user-transparent persistent references";
    space.writeBytes(0x10100, msg, sizeof(msg));
    char out[sizeof(msg)];
    space.readBytes(0x10100, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}
