/** @file Unit tests for undo-log transactions and crash recovery. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "nvm/pool.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

/** Write a u64 at a pool offset directly through the backing. */
void
poke(Pool &pool, PoolOffset off, std::uint64_t v)
{
    pool.backing().write(off, &v, sizeof(v));
}

std::uint64_t
peek(const Pool &pool, PoolOffset off)
{
    std::uint64_t v;
    pool.backing().read(off, &v, sizeof(v));
    return v;
}

} // namespace

class TxnTest : public ::testing::Test
{
  protected:
    TxnTest() : pool(1, "t", 1 << 20)
    {
        dataOff = static_cast<PoolOffset>(pool.header().arenaStart);
        poke(pool, dataOff, 100);
        poke(pool, dataOff + 8, 200);
    }

    Pool pool;
    PoolOffset dataOff;
};

TEST_F(TxnTest, CommitKeepsNewValues)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8);
        poke(pool, dataOff, 111);
        txn.commit();
    }
    EXPECT_EQ(peek(pool, dataOff), 111u);
    EXPECT_FALSE(Txn::isActive(pool));
}

TEST_F(TxnTest, AbortRestoresPreImages)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8);
        poke(pool, dataOff, 111);
        txn.recordWrite(dataOff + 8, 8);
        poke(pool, dataOff + 8, 222);
        txn.abort();
    }
    EXPECT_EQ(peek(pool, dataOff), 100u);
    EXPECT_EQ(peek(pool, dataOff + 8), 200u);
}

TEST_F(TxnTest, DestructorWithoutCommitAborts)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8);
        poke(pool, dataOff, 999);
        // no commit: simulated failure path
    }
    EXPECT_EQ(peek(pool, dataOff), 100u);
}

TEST_F(TxnTest, OverlappingWritesRollBackToOldest)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8);
        poke(pool, dataOff, 1);
        txn.recordWrite(dataOff, 8); // second pre-image = 1
        poke(pool, dataOff, 2);
        txn.abort();
    }
    // Reverse-order undo restores the original 100, not 1.
    EXPECT_EQ(peek(pool, dataOff), 100u);
}

TEST_F(TxnTest, RecoverAppliesLogFromCrashedImage)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8);
        poke(pool, dataOff, 424242);
        // Simulate a crash: snapshot the pool mid-transaction.
        Pool crashed("crashed", Backing(pool.backing()));
        EXPECT_TRUE(Txn::isActive(crashed));
        EXPECT_TRUE(Txn::recover(crashed));
        EXPECT_EQ(peek(crashed, dataOff), 100u);
        EXPECT_FALSE(Txn::isActive(crashed));
        // Second recovery is a no-op.
        EXPECT_FALSE(Txn::recover(crashed));
        txn.commit();
    }
}

TEST_F(TxnTest, RecoverWithEmptyLogClearsTheActiveFlag)
{
    {
        // Crash after the txn opened but before any write was logged.
        Txn txn(pool);
        Pool crashed("crashed", Backing(pool.backing()));
        EXPECT_TRUE(Txn::isActive(crashed));
        EXPECT_TRUE(Txn::recover(crashed)); // rollback of zero entries
        EXPECT_FALSE(Txn::isActive(crashed));
        EXPECT_EQ(peek(crashed, dataOff), 100u);
        txn.commit();
    }
}

TEST_F(TxnTest, DoubleRecoveryIsIdempotent)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8);
        poke(pool, dataOff, 111);
        Pool crashed("crashed", Backing(pool.backing()));
        EXPECT_TRUE(Txn::recover(crashed));
        EXPECT_EQ(peek(crashed, dataOff), 100u);
        // A crash *during* recovery means recovery simply runs again
        // on the next boot; the image must be a stable fixed point.
        EXPECT_FALSE(Txn::recover(crashed));
        EXPECT_FALSE(Txn::recover(crashed));
        EXPECT_EQ(peek(crashed, dataOff), 100u);
        txn.commit();
    }
}

TEST_F(TxnTest, RecoverReplaysOverlappingRangesInReverse)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8); // pre-image 100
        poke(pool, dataOff, 1);
        txn.recordWrite(dataOff, 8); // pre-image 1
        poke(pool, dataOff, 2);
        Pool crashed("crashed", Backing(pool.backing()));
        EXPECT_TRUE(Txn::recover(crashed));
        // Reverse replay: the entry holding 1 lands first, then the
        // entry holding 100 overwrites it. Forward order would leave 1.
        EXPECT_EQ(peek(crashed, dataOff), 100u);
        txn.commit();
    }
}

TEST_F(TxnTest, TornFinalEntryIsDiscardedNotReplayed)
{
    {
        Txn txn(pool);
        txn.recordWrite(dataOff, 8); // entry 0: pre-image 100
        poke(pool, dataOff, 111);
        txn.recordWrite(dataOff + 8, 8); // entry 1: pre-image 200
        poke(pool, dataOff + 8, 222);

        Pool crashed("crashed", Backing(pool.backing()));
        // Tear the tail at byte granularity: wind the tail pointer
        // back into the middle of entry 1, as if its append made it
        // to media only partially.
        const Bytes control = Pool::kHeaderSize;
        std::uint64_t tail;
        crashed.backing().read(control, &tail, sizeof(tail));
        tail -= 5;
        crashed.backing().write(control, &tail, sizeof(tail));

        const std::uint64_t warns_before = warnCount();
        EXPECT_TRUE(Txn::recover(crashed));
        // Entry 0 replays; the torn entry 1 must be discarded, never
        // half-applied.
        EXPECT_EQ(peek(crashed, dataOff), 100u);
        EXPECT_EQ(peek(crashed, dataOff + 8), 222u);
        EXPECT_FALSE(Txn::isActive(crashed));
        EXPECT_GT(warnCount(), warns_before);
        txn.commit();
    }
}

TEST_F(TxnTest, TwoConcurrentTxnsOnOnePoolRejected)
{
    Txn txn(pool);
    EXPECT_THROW(Txn second(pool), Fault);
    txn.commit();
}

TEST_F(TxnTest, LogOverflowThrowsPoolFull)
{
    Txn txn(pool);
    bool threw = false;
    try {
        // Each entry is 16 B header + 4 KiB payload; the 64 KiB log
        // fills after ~16 entries.
        for (int i = 0; i < 100; ++i)
            txn.recordWrite(dataOff, 4096);
    } catch (const Fault &f) {
        threw = true;
        EXPECT_EQ(f.kind(), FaultKind::PoolFull);
    }
    EXPECT_TRUE(threw);
    txn.abort(); // rollback of the successfully logged prefix is fine
    EXPECT_EQ(peek(pool, dataOff), 100u);
}

TEST_F(TxnTest, FreshTxnAfterCommitWorks)
{
    {
        Txn a(pool);
        a.recordWrite(dataOff, 8);
        poke(pool, dataOff, 5);
        a.commit();
    }
    {
        Txn b(pool);
        b.recordWrite(dataOff, 8);
        poke(pool, dataOff, 6);
        b.abort();
    }
    EXPECT_EQ(peek(pool, dataOff), 5u);
}
