/** @file Unit tests for the observability metrics layer: log2
 * histogram bucket boundaries and percentiles, snapshot-delta
 * arithmetic, MetricsRegistry federation (same-named groups sum,
 * same-named histograms merge), and the count==counter invariants the
 * runtime wiring guarantees. */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/stats.hh"
#include "core/runtime.hh"
#include "obs/json_value.hh"
#include "obs/metrics.hh"

using namespace upr;
using namespace upr::obs;

namespace
{
constexpr std::uint64_t kU64Max =
    std::numeric_limits<std::uint64_t>::max();
} // namespace

// ----------------------------------------------------------------------
// Bucket geometry
// ----------------------------------------------------------------------

TEST(HistogramBuckets, ZeroHasItsOwnBucket)
{
    EXPECT_EQ(histogramBucketOf(0), 0u);
    EXPECT_EQ(histogramBucketLow(0), 0u);
    EXPECT_EQ(histogramBucketHigh(0), 0u);
}

TEST(HistogramBuckets, PowersOfTwoOpenNewBuckets)
{
    for (unsigned k = 0; k < 64; ++k) {
        const std::uint64_t pow = std::uint64_t{1} << k;
        // 2^k is the smallest value in bucket k+1 ...
        EXPECT_EQ(histogramBucketOf(pow), k + 1) << "k=" << k;
        EXPECT_EQ(histogramBucketLow(k + 1), pow) << "k=" << k;
        // ... and 2^k - 1 is the largest value in bucket k.
        EXPECT_EQ(histogramBucketOf(pow - 1), k) << "k=" << k;
        EXPECT_EQ(histogramBucketHigh(k), pow - 1) << "k=" << k;
    }
}

TEST(HistogramBuckets, MaxValueLandsInLastBucket)
{
    EXPECT_EQ(histogramBucketOf(kU64Max), 64u);
    EXPECT_EQ(histogramBucketHigh(64), kU64Max);
    EXPECT_EQ(histogramBucketLow(64), std::uint64_t{1} << 63);
}

TEST(HistogramBuckets, EveryValueFallsInsideItsBucketRange)
{
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
          std::uint64_t{3}, std::uint64_t{7}, std::uint64_t{100},
          std::uint64_t{4096}, std::uint64_t{1} << 40, kU64Max - 1,
          kU64Max}) {
        const unsigned b = histogramBucketOf(v);
        ASSERT_LT(b, HistogramData::kBuckets);
        EXPECT_LE(histogramBucketLow(b), v);
        EXPECT_GE(histogramBucketHigh(b), v);
    }
}

// ----------------------------------------------------------------------
// Recording and percentiles
// ----------------------------------------------------------------------

TEST(LatencyHistogram, RecordsCountSumMinMax)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    h.record(8);
    h.record(2);
    h.record(0);
    h.record(kU64Max);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 10u + kU64Max);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), kU64Max);
    EXPECT_EQ(h.data().buckets[0], 1u);  // the zero
    EXPECT_EQ(h.data().buckets[2], 1u);  // 2 in [2,3]
    EXPECT_EQ(h.data().buckets[4], 1u);  // 8 in [8,15]
    EXPECT_EQ(h.data().buckets[64], 1u); // uint64 max
}

TEST(LatencyHistogram, EmptyPercentileIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.percentile(0), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(100), 0u);
}

TEST(LatencyHistogram, PercentileEndpointsAreMinAndMax)
{
    LatencyHistogram h;
    h.record(3);
    h.record(40);
    h.record(500);
    EXPECT_EQ(h.percentile(0), 3u);
    EXPECT_EQ(h.percentile(100), 500u);
}

TEST(LatencyHistogram, PercentileIsUpperBucketBoundClamped)
{
    LatencyHistogram h;
    h.record(1); // bucket 1: [1,1]
    h.record(2); // bucket 2: [2,3]
    h.record(4); // bucket 3: [4,7]
    h.record(8); // bucket 4: [8,15]
    // rank ceil(0.50*4)=2 -> bucket 2 -> upper bound 3.
    EXPECT_EQ(h.percentile(50), 3u);
    // rank ceil(0.99*4)=4 -> bucket 4 -> bound 15, clamped to max 8.
    EXPECT_EQ(h.percentile(99), 8u);
}

TEST(LatencyHistogram, AllZerosPercentileIsZero)
{
    LatencyHistogram h;
    for (int i = 0; i < 64; ++i)
        h.record(0);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(99), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogram, ResetForgetsEverything)
{
    LatencyHistogram h;
    h.record(17);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
}

// ----------------------------------------------------------------------
// Merge and interval (delta) arithmetic
// ----------------------------------------------------------------------

TEST(HistogramData, MergeCombinesSamples)
{
    LatencyHistogram a, b;
    a.record(1);
    a.record(100);
    b.record(50);
    b.record(kU64Max);

    HistogramData m = a.data();
    m.merge(b.data());
    EXPECT_EQ(m.count, 4u);
    EXPECT_EQ(m.sum, 151u + kU64Max);
    EXPECT_EQ(m.min, 1u);
    EXPECT_EQ(m.max, kU64Max);

    // Merging an empty histogram changes nothing.
    HistogramData before = m;
    m.merge(HistogramData{});
    EXPECT_EQ(m.count, before.count);
    EXPECT_EQ(m.min, before.min);
    EXPECT_EQ(m.max, before.max);
}

TEST(HistogramData, MinusSubtractsBucketwise)
{
    LatencyHistogram h;
    h.record(4);
    h.record(16);
    const HistogramData older = h.data();
    h.record(1000);
    h.record(4);

    const HistogramData d = h.data().minus(older);
    EXPECT_EQ(d.count, 2u);
    EXPECT_EQ(d.sum, 1004u);
    EXPECT_EQ(d.buckets[histogramBucketOf(1000)], 1u);
    EXPECT_EQ(d.buckets[histogramBucketOf(4)], 1u);
    EXPECT_EQ(d.buckets[histogramBucketOf(16)], 0u);
}

TEST(HistogramData, MinusOfSelfIsEmpty)
{
    LatencyHistogram h;
    h.record(9);
    h.record(200);
    const HistogramData d = h.data().minus(h.data());
    EXPECT_EQ(d.count, 0u);
    EXPECT_EQ(d.sum, 0u);
    EXPECT_EQ(d.min, 0u);
    EXPECT_EQ(d.max, 0u);
    for (unsigned b = 0; b < HistogramData::kBuckets; ++b)
        EXPECT_EQ(d.buckets[b], 0u);
}

TEST(MetricsSnapshot, MinusSubtractsAndSaturates)
{
    MetricsSnapshot older, newer;
    older.counters["a"] = 10;
    older.counters["gone"] = 99; // re-created component: now smaller
    newer.counters["a"] = 15;
    newer.counters["gone"] = 3;
    newer.counters["fresh"] = 7; // absent from older: passes through

    const MetricsSnapshot d = newer.minus(older);
    EXPECT_EQ(d.counters.at("a"), 5u);
    EXPECT_EQ(d.counters.at("gone"), 0u); // saturates, no wrap
    EXPECT_EQ(d.counters.at("fresh"), 7u);
}

// ----------------------------------------------------------------------
// Registry federation
// ----------------------------------------------------------------------

TEST(MetricsRegistry, ScopedRegistrationIsBalanced)
{
    auto &reg = MetricsRegistry::instance();
    const std::size_t g0 = reg.groupCount();
    const std::size_t h0 = reg.histogramCount();
    {
        StatGroup g("tg");
        Counter c;
        g.registerCounter("c", c, "test");
        LatencyHistogram h;
        ScopedMetricsGroup sg(g);
        ScopedMetricsHistogram sh("t.h", h);
        EXPECT_EQ(reg.groupCount(), g0 + 1);
        EXPECT_EQ(reg.histogramCount(), h0 + 1);
    }
    EXPECT_EQ(reg.groupCount(), g0);
    EXPECT_EQ(reg.histogramCount(), h0);
}

TEST(MetricsRegistry, SameNamedGroupsSumInSnapshot)
{
    StatGroup g1("tgsum"), g2("tgsum");
    Counter a, b;
    g1.registerCounter("x", a, "one instance");
    g2.registerCounter("x", b, "another instance");
    a.add(3);
    b.add(4);
    ScopedMetricsGroup r1(g1), r2(g2);

    const MetricsSnapshot s = MetricsRegistry::instance().snapshot();
    EXPECT_EQ(s.counters.at("tgsum.x"), 7u); // fleet view: 3 + 4
}

TEST(MetricsRegistry, SameNamedHistogramsMergeInSnapshot)
{
    LatencyHistogram h1, h2;
    h1.record(2);
    h2.record(1 << 20);
    ScopedMetricsHistogram r1("t.merge", h1);
    ScopedMetricsHistogram r2("t.merge", h2);

    const MetricsSnapshot s = MetricsRegistry::instance().snapshot();
    const HistogramData &d = s.histograms.at("t.merge");
    EXPECT_EQ(d.count, 2u);
    EXPECT_EQ(d.min, 2u);
    EXPECT_EQ(d.max, std::uint64_t{1} << 20);
}

TEST(MetricsRegistry, PrefixedDuplicateGroupIsDetectedNotMerged)
{
    // Unprefixed same-named groups sum (the fleet view above); a
    // *prefixed* name claims uniqueness — two registrations under the
    // same shard prefix are a wiring bug. Sanitized builds fault;
    // release builds keep both visible under a "#N" rename so the
    // collision shows up in dumps instead of silently summing.
    StatGroup g1("tdup"), g2("tdup");
    Counter a, b;
    g1.registerCounter("x", a, "first owner");
    g2.registerCounter("x", b, "accidental twin");
    a.add(1);
    b.add(10);

    ScopedRegistrationPrefix prefix("shardX.");
    ScopedMetricsGroup r1(g1);
#ifdef UPR_SANITIZE
    try {
        ScopedMetricsGroup r2(g2);
        FAIL() << "expected Fault{BadUsage} on duplicate "
                  "prefixed group";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::BadUsage);
    }
#else
    ScopedMetricsGroup r2(g2);
    const MetricsSnapshot s = MetricsRegistry::instance().snapshot();
    EXPECT_EQ(s.counters.at("shardX.tdup.x"), 1u);
    EXPECT_EQ(s.counters.at("shardX.tdup#2.x"), 10u);
    // No silent sum under the claimed name.
    EXPECT_EQ(s.counters.count("shardX.tdup.x"), 1u);
#endif
}

#ifndef UPR_SANITIZE
TEST(MetricsRegistry, PrefixedTripleCollisionRenamesDistinctly)
{
    StatGroup g1("ttri"), g2("ttri"), g3("ttri");
    Counter a, b, c;
    g1.registerCounter("n", a, "one");
    g2.registerCounter("n", b, "two");
    g3.registerCounter("n", c, "three");
    a.add(1);
    b.add(2);
    c.add(3);

    ScopedRegistrationPrefix prefix("shardY.");
    ScopedMetricsGroup r1(g1), r2(g2), r3(g3);
    const MetricsSnapshot s = MetricsRegistry::instance().snapshot();
    EXPECT_EQ(s.counters.at("shardY.ttri.n"), 1u);
    EXPECT_EQ(s.counters.at("shardY.ttri#2.n"), 2u);
    EXPECT_EQ(s.counters.at("shardY.ttri#3.n"), 3u);
}
#endif

TEST(MetricsRegistry, NamedSnapshotsGiveIntervalDeltas)
{
    auto &reg = MetricsRegistry::instance();
    StatGroup g("tgiv");
    Counter c;
    g.registerCounter("ops", c, "interval test");
    ScopedMetricsGroup sg(g);

    c.add(5);
    reg.saveNamed("phase1");
    c.add(11);

    const MetricsSnapshot d =
        reg.snapshot().minus(reg.named("phase1"));
    EXPECT_EQ(d.counters.at("tgiv.ops"), 11u);

    reg.dropNamed("phase1");
    EXPECT_EQ(reg.named("phase1").counters.size(), 0u);
    // Never-saved names come back empty, not as an error.
    EXPECT_EQ(reg.named("no-such-snapshot").counters.size(), 0u);
}

TEST(MetricsSnapshot, ToJsonRoundTripsThroughParser)
{
    StatGroup g("tgjson");
    Counter c;
    g.registerCounter("n", c, "json test");
    c.add(kU64Max); // exact 64-bit values must survive
    LatencyHistogram h;
    h.record(3);
    h.record(3);
    ScopedMetricsGroup sg(g);
    ScopedMetricsHistogram sh("t.json", h);

    const std::string text =
        MetricsRegistry::instance().snapshot().toJson();
    const JsonValue doc = parseJson(text);

    const JsonValue *cs = doc.find("counters");
    ASSERT_NE(cs, nullptr);
    const JsonValue *n = cs->find("tgjson.n");
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->asUint(), kU64Max);

    const JsonValue *hs = doc.find("histograms");
    ASSERT_NE(hs, nullptr);
    const JsonValue *hj = hs->find("t.json");
    ASSERT_NE(hj, nullptr);
    EXPECT_EQ(hj->find("count")->asUint(), 2u);
    EXPECT_EQ(hj->find("p50")->asUint(), 3u);
}

// ----------------------------------------------------------------------
// Runtime wiring invariants
// ----------------------------------------------------------------------

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.placement = Placement::Randomized;
    cfg.seed = 77;
    return cfg;
}

} // namespace

TEST(RuntimeObservability, CheckHistogramCountEqualsDynamicChecks)
{
    Runtime rt(makeConfig(Version::Sw));
    const PoolId pool = rt.createPool("tp", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);
    const PtrBits q = rt.pmallocBits(pool, 64);
    const SimAddr va = rt.resolveForAccess(p, 1);
    rt.storePtr(va, q, 2);
    (void)rt.loadPtr(va);

    EXPECT_GT(rt.dynamicChecks(), 0u);
    EXPECT_EQ(rt.checkHistogram().count(), rt.dynamicChecks());
    // Every software check costs at least one simulated cycle.
    EXPECT_GE(rt.checkHistogram().min(), 1u);
}

TEST(RuntimeObservability, PtrAssignHistogramCountEqualsStorePOps)
{
    for (Version v : {Version::Sw, Version::Hw, Version::Explicit}) {
        SCOPED_TRACE(static_cast<int>(v));
        Runtime rt(makeConfig(v));
        const PoolId pool = rt.createPool("tp", 1 << 20);
        const PtrBits p = rt.pmallocBits(pool, 64);
        const PtrBits q = rt.pmallocBits(pool, 64);
        const SimAddr va = rt.resolveForAccess(p, 1);
        rt.storePtr(va, q, 2);
        rt.storePtr(va, q, 2);

        EXPECT_EQ(rt.ptrAssignHistogram().count(),
                  rt.stats().lookup("storePOps"));
        EXPECT_EQ(rt.ptrAssignHistogram().count(), 2u);
    }
}

TEST(RuntimeObservability, VolatileVersionRecordsNothing)
{
    Runtime rt(makeConfig(Version::Volatile));
    const SimAddr a = rt.mallocBytes(64);
    const SimAddr b = rt.mallocBytes(64);
    rt.storePtr(a, b, 1);
    EXPECT_EQ(rt.checkHistogram().count(), 0u);
    EXPECT_EQ(rt.ptrAssignHistogram().count(), 0u);
}

TEST(RuntimeObservability, ResetCountersClearsHistograms)
{
    Runtime rt(makeConfig(Version::Sw));
    const PoolId pool = rt.createPool("tp", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);
    (void)rt.resolveForAccess(p, 1);
    ASSERT_GT(rt.checkHistogram().count(), 0u);

    rt.resetCounters();
    EXPECT_EQ(rt.dynamicChecks(), 0u);
    EXPECT_EQ(rt.checkHistogram().count(), 0u);
    EXPECT_EQ(rt.ptrAssignHistogram().count(), 0u);
    EXPECT_EQ(rt.txnCommitHistogram().count(), 0u);
}
