/** @file Unit + property tests for the B+tree range table (VATB). */

#include <gtest/gtest.h>

#include <map>

#include "arch/range_table.hh"
#include "common/random.hh"

using namespace upr;

TEST(RangeTable, EmptyLookupMisses)
{
    RangeTable t;
    EXPECT_FALSE(t.lookup(0x1000).has_value());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.height(), 0u);
}

TEST(RangeTable, SingleRangeBoundaries)
{
    RangeTable t;
    t.insert({0x1000, 0x100, 7});
    EXPECT_FALSE(t.lookup(0xFFF).has_value());
    ASSERT_TRUE(t.lookup(0x1000).has_value());
    EXPECT_EQ(t.lookup(0x1000)->id, 7u);
    EXPECT_TRUE(t.lookup(0x10FF).has_value());
    EXPECT_FALSE(t.lookup(0x1100).has_value());
}

TEST(RangeTable, ManyRangesSplitNodes)
{
    RangeTable t;
    // 100 ranges force several levels of splits (kMaxKeys = 8).
    for (std::uint64_t i = 0; i < 100; ++i)
        t.insert({i * 0x1000, 0x800, static_cast<PoolId>(i + 1)});
    t.checkConsistency();
    EXPECT_EQ(t.size(), 100u);
    EXPECT_GE(t.height(), 2u);

    for (std::uint64_t i = 0; i < 100; ++i) {
        auto hit = t.lookup(i * 0x1000 + 0x7FF);
        ASSERT_TRUE(hit.has_value()) << i;
        EXPECT_EQ(hit->id, i + 1);
        // Gap between ranges misses.
        EXPECT_FALSE(t.lookup(i * 0x1000 + 0x800).has_value());
    }
}

TEST(RangeTable, LookupDepthGrowsWithSize)
{
    RangeTable t;
    t.insert({0, 16, 1});
    unsigned depth_small = 0;
    t.lookup(0, &depth_small);
    for (std::uint64_t i = 1; i < 200; ++i)
        t.insert({i * 32, 16, static_cast<PoolId>(i + 1)});
    unsigned depth_large = 0;
    t.lookup(0, &depth_large);
    EXPECT_GT(depth_large, depth_small);
    EXPECT_EQ(depth_large, t.height());
}

TEST(RangeTable, EraseRemovesExactlyOne)
{
    RangeTable t;
    t.insert({0x1000, 0x100, 1});
    t.insert({0x3000, 0x100, 2});
    t.erase(0x1000);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_FALSE(t.lookup(0x1000).has_value());
    EXPECT_TRUE(t.lookup(0x3000).has_value());
    t.checkConsistency();
}

TEST(RangeTable, EraseUnknownPanics)
{
    RangeTable t;
    t.insert({0x1000, 0x100, 1});
    EXPECT_DEATH(t.erase(0x9999), "unknown range");
}

TEST(RangeTable, OverlapInsertPanics)
{
    RangeTable t;
    t.insert({0x1000, 0x100, 1});
    EXPECT_DEATH(t.insert({0x1080, 0x100, 2}), "overlapping");
}

TEST(RangeTable, RebuildReplacesContents)
{
    RangeTable t;
    t.insert({0x1000, 0x100, 1});
    t.rebuild({{0x5000, 0x200, 9}});
    EXPECT_EQ(t.size(), 1u);
    EXPECT_FALSE(t.lookup(0x1000).has_value());
    EXPECT_EQ(t.lookup(0x5100)->id, 9u);
}

TEST(RangeTable, CollectIsSorted)
{
    RangeTable t;
    const std::uint64_t starts[] = {0x9000, 0x1000, 0x5000, 0x3000};
    for (std::uint64_t s : starts)
        t.insert({s, 0x100, 1});
    const auto all = t.collect();
    ASSERT_EQ(all.size(), 4u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1].start, all[i].start);
}

/** Property test: agree with a std::map oracle under random ops. */
TEST(RangeTable, RandomizedAgainstOracle)
{
    RangeTable t;
    std::map<SimAddr, RangeRecord> oracle;
    Rng rng(2024);

    for (int step = 0; step < 2000; ++step) {
        if (oracle.size() < 64 && rng.nextBounded(100) < 60) {
            // Insert a fresh non-overlapping range on a 1 MiB grid.
            const SimAddr start = rng.nextBounded(1024) << 20;
            if (oracle.count(start))
                continue;
            const Bytes size = (1 + rng.nextBounded(255)) << 12;
            const RangeRecord r{start, size,
                                static_cast<PoolId>(step + 1)};
            t.insert(r);
            oracle.emplace(start, r);
        } else if (!oracle.empty()) {
            auto it = oracle.begin();
            std::advance(it, rng.nextBounded(oracle.size()));
            t.erase(it->first);
            oracle.erase(it);
        }

        // Random probes must agree with the oracle.
        for (int probe = 0; probe < 5; ++probe) {
            const SimAddr va = rng.nextBounded(1024ULL << 20);
            auto got = t.lookup(va);
            auto up = oracle.upper_bound(va);
            const RangeRecord *want = nullptr;
            if (up != oracle.begin()) {
                const auto &cand = std::prev(up)->second;
                if (va >= cand.start && va < cand.start + cand.size)
                    want = &cand;
            }
            if (want) {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(got->id, want->id);
            } else {
                EXPECT_FALSE(got.has_value());
            }
        }
        if (step % 200 == 0)
            t.checkConsistency();
    }
    t.checkConsistency();
}
