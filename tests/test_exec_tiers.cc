/** @file Cross-engine invariance for the direct-threaded execution
 * tiers: every tests/ir_corpus fixture and every demo workload must
 * produce byte-identical results, instruction counts and dynamic
 * check counts through the Interpreter, the FastExecutor Model tier
 * and the FastExecutor Native tier — and the Model tier must land on
 * the Interpreter's exact simulated cycle count. Faults are part of
 * the contract too: all three engines raise the same Fault kind. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench_ir.hh"
#include "compiler/interpreter.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

const char *kCorpusFixtures[] = {
    "all_dynamic.ir",       "clean_static.ir",  "fig9_append.ir",
    "guard_narrow.ir",      "cross_pool_compare.ir",
    "escaping_arith.ir",    "mixed_storep.ir",
};

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(UPR_IR_CORPUS_DIR) + "/" + name;
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

enum class Engine
{
    Interp,
    Model,
    Native,
};

const Engine kEngines[] = {Engine::Interp, Engine::Model,
                           Engine::Native};

const char *
engineName(Engine e)
{
    switch (e) {
      case Engine::Interp: return "interpreter";
      case Engine::Model: return "model";
      case Engine::Native: return "native";
    }
    return "?";
}

struct EngineRun
{
    bool faulted = false;
    FaultKind fault = FaultKind::BadUsage;
    std::string faultWhat;
    std::uint64_t result = 0;
    std::uint64_t instructions = 0;
    std::uint64_t dynamicChecks = 0;
    Cycles cycles = 0;
};

/** Run @main through one engine on a fresh SW runtime. */
EngineRun
runEngine(const ExecProgram &p, Engine e,
          const std::vector<std::uint64_t> &args,
          bool strict_storep = false)
{
    Runtime::Config cfg;
    cfg.version = Version::Sw;
    cfg.seed = 0xB0;
    cfg.strictStoreP = strict_storep;
    cfg.execTier =
        e == Engine::Native ? ExecTier::Native : ExecTier::Model;
    Runtime rt(cfg);
    const PoolId pool = rt.createPool("exec", 32 << 20);

    EngineRun r;
    try {
        if (e == Engine::Interp) {
            Interpreter::Config icfg;
            icfg.pool = pool;
            Interpreter in(rt, p.mod, p.plan, icfg);
            r.result = in.call("main", args);
            r.instructions = in.instructionCount();
            r.dynamicChecks = in.dynamicCheckCount();
        } else {
            const LoweredModule lm =
                lowerModule(p.mod, p.plan, rt.version());
            FastExecutor::Config xcfg;
            xcfg.pool = pool;
            xcfg.tier = e == Engine::Native ? ExecTier::Native
                                            : ExecTier::Model;
            FastExecutor ex(rt, lm, xcfg);
            r.result = ex.call("main", args);
            r.instructions = ex.instructionCount();
            r.dynamicChecks = ex.dynamicCheckCount();
        }
    } catch (const Fault &f) {
        r.faulted = true;
        r.fault = f.kind();
        r.faultWhat = f.what();
    }
    r.cycles = rt.machine().now();
    return r;
}

/** Run all three engines and assert the cross-engine contract. */
void
expectEnginesAgree(const ExecProgram &p,
                   const std::vector<std::uint64_t> &args,
                   bool strict_storep = false)
{
    const EngineRun interp =
        runEngine(p, Engine::Interp, args, strict_storep);
    for (Engine e : {Engine::Model, Engine::Native}) {
        SCOPED_TRACE(engineName(e));
        const EngineRun run = runEngine(p, e, args, strict_storep);
        ASSERT_EQ(run.faulted, interp.faulted)
            << (run.faulted ? run.faultWhat : interp.faultWhat);
        if (interp.faulted) {
            EXPECT_EQ(run.fault, interp.fault);
            continue;
        }
        EXPECT_EQ(run.result, interp.result);
        EXPECT_EQ(run.instructions, interp.instructions);
        EXPECT_EQ(run.dynamicChecks, interp.dynamicChecks);
        // The Model tier is the same simulation behind a faster
        // dispatch loop: the clock must not move by a single cycle.
        if (e == Engine::Model) {
            EXPECT_EQ(run.cycles, interp.cycles);
        }
    }
}

} // namespace

TEST(ExecTiers, CorpusFixturesAgreeAcrossEngines)
{
    for (const char *name : kCorpusFixtures) {
        SCOPED_TRACE(name);
        const ExecProgram p =
            compileExecProgram(readFixture(name).c_str());
        // The uprlint validation contract: runnable @main with
        // integer parameters, every argument 8.
        const std::vector<std::uint64_t> args(
            p.mod.get("main").paramTypes.size(), 8);
        expectEnginesAgree(p, args);
    }
}

TEST(ExecTiers, DemoWorkloadsAgreeAcrossEngines)
{
    for (const ExecWorkload &w : execWorkloads(/*scale=*/100)) {
        SCOPED_TRACE(w.name);
        const ExecProgram p = compileExecProgram(w.source);
        expectEnginesAgree(p, w.args);
    }
}

// The degenerate end of the elision spectrum: a program where every
// site keeps its guard. The Native tier gains nothing here but must
// stay bit-identical — the tier switch changes speed, never results.
TEST(ExecTiers, AllDynamicFixtureRetainsEveryGuard)
{
    const ExecProgram p =
        compileExecProgram(readFixture("all_dynamic.ir").c_str());
    EXPECT_EQ(p.elidedSites, 0u);

    const ExecRun model = runExecTier(p, ExecTier::Model, {});
    const ExecRun native = runExecTier(p, ExecTier::Native, {});
    EXPECT_GT(model.lowered.sites, 0u);
    EXPECT_EQ(model.lowered.retainedGuards, model.lowered.sites);
    EXPECT_EQ(model.lowered.elidedGuards, 0u);
    EXPECT_EQ(native.result, model.result);
    EXPECT_EQ(native.instructions, model.instructions);
    EXPECT_EQ(native.dynamicChecks, model.dynamicChecks);
    EXPECT_GT(model.dynamicChecks, 0u);
}

// Fully-static programs take the Native tier's raw-window fast path
// for every access; the checksum still must not drift.
TEST(ExecTiers, SweepIsFullyElided)
{
    const ExecProgram p = compileExecProgram(ir::kSweepSource);
    const ExecRun model = runExecTier(p, ExecTier::Model, {64});
    const ExecRun native = runExecTier(p, ExecTier::Native, {64});
    EXPECT_EQ(model.lowered.retainedGuards, 0u);
    EXPECT_GT(model.lowered.sites, 0u);
    EXPECT_EQ(model.dynamicChecks, 0u);
    EXPECT_EQ(native.dynamicChecks, 0u);
    EXPECT_EQ(native.result, model.result);
}

// An elided destination check must keep the strict storeP fault
// semantics in every engine: dest-implied-by-addr removes the
// determineX guard, not the Table I fault row.
TEST(ExecTiers, ElidedDestKeepsStrictStorePFault)
{
    // Open-world inference leaves @sink's parameter Unknown, so the
    // storep's destination check is inserted dynamically and then
    // elided (dest-implied-by-addr); the value is statically a DRAM
    // virtual address, so the storep lowers to StorePMode::Static
    // with destElided set. At runtime the destination is NVM.
    static const char *kSource = R"(
func @sink(%d: ptr) -> i64 {
entry:
  %h = malloc 8
  storep %h, %d
  %z = const 0
  ret %z
}
func @main() -> i64 {
entry:
  %p = pmalloc 16
  %r = call @sink(%p)
  ret %r
}
)";
    const ExecProgram p = compileExecProgram(kSource);
    for (Engine e : kEngines) {
        SCOPED_TRACE(engineName(e));
        const EngineRun run =
            runEngine(p, e, {}, /*strict_storep=*/true);
        ASSERT_TRUE(run.faulted);
        EXPECT_EQ(run.fault, FaultKind::StorePFault);
    }
    // Without strict mode the same program completes everywhere.
    expectEnginesAgree(p, {}, /*strict_storep=*/false);
}
