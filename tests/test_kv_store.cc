/** @file Integration tests: KV store + every index structure + YCSB,
 * across versions — outputs must be identical in all versions (the
 * paper's Sec VII-B soundness criterion). */

#include <gtest/gtest.h>

#include "kvstore/kv_store.hh"

using namespace upr;

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 44;
    return cfg;
}

WorkloadSpec
smallSpec()
{
    WorkloadSpec spec;
    spec.recordCount = 500;
    spec.operationCount = 3000;
    return spec;
}

/** Run the workload with index type I under version v. */
template <typename I>
KvRunResult
runOne(Version v, const YcsbWorkload &w)
{
    Runtime rt(makeConfig(v));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("kv", 64 << 20);
    KvStore<I> store(MemEnv::persistentEnv(rt, pool));
    KvRunResult res = store.run(w);
    store.index().validate();
    return res;
}

} // namespace

template <typename I>
class KvStoreTest : public ::testing::Test
{
};

using IndexTypes = ::testing::Types<
    HashMap<std::uint64_t, std::uint64_t>,
    RbTree<std::uint64_t, std::uint64_t>,
    SplayTree<std::uint64_t, std::uint64_t>,
    AvlTree<std::uint64_t, std::uint64_t>,
    ScapegoatTree<std::uint64_t, std::uint64_t>>;

TYPED_TEST_SUITE(KvStoreTest, IndexTypes);

TYPED_TEST(KvStoreTest, BasicSetGet)
{
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("kv", 16 << 20);
    KvStore<TypeParam> store(MemEnv::persistentEnv(rt, pool));
    store.set(1, 10);
    store.set(2, 20);
    store.set(1, 11);
    EXPECT_EQ(store.get(1).value(), 11u);
    EXPECT_EQ(store.get(2).value(), 20u);
    EXPECT_FALSE(store.get(3).has_value());
    EXPECT_EQ(store.size(), 2u);
}

TYPED_TEST(KvStoreTest, YcsbAllGetsHit)
{
    const YcsbWorkload w(smallSpec());
    const KvRunResult res = runOne<TypeParam>(Version::Hw, w);
    EXPECT_EQ(res.gets, res.getHits);
    EXPECT_GT(res.gets, 0u);
    EXPECT_GT(res.sets, 0u);
    EXPECT_GT(res.cycles, 0u);
}

TYPED_TEST(KvStoreTest, OutputsIdenticalAcrossVersions)
{
    // The same workload must produce bit-identical GET results under
    // all four versions: user transparency does not change semantics.
    const YcsbWorkload w(smallSpec());
    const KvRunResult volatile_res =
        runOne<TypeParam>(Version::Volatile, w);
    for (Version v : {Version::Sw, Version::Hw, Version::Explicit}) {
        const KvRunResult res = runOne<TypeParam>(v, w);
        EXPECT_EQ(res.checksum, volatile_res.checksum)
            << versionName(v);
        EXPECT_EQ(res.getHits, volatile_res.getHits) << versionName(v);
        EXPECT_EQ(res.sets, volatile_res.sets) << versionName(v);
    }
}

TYPED_TEST(KvStoreTest, StoreSizeMatchesInserts)
{
    const YcsbWorkload w(smallSpec());
    Runtime rt(makeConfig(Version::Hw));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("kv", 64 << 20);
    KvStore<TypeParam> store(MemEnv::persistentEnv(rt, pool));
    const KvRunResult res = store.run(w);
    EXPECT_EQ(store.size(), w.loadOps().size() + res.sets);
}

TEST(KvStoreTiming, VersionsOrderedAsInFig11)
{
    // Coarse sanity of the cost model on a small workload:
    //   Volatile <= HW < SW, and HW < Explicit.
    const YcsbWorkload w(smallSpec());
    using Rb = RbTree<std::uint64_t, std::uint64_t>;
    const Cycles vol = runOne<Rb>(Version::Volatile, w).cycles;
    const Cycles hw = runOne<Rb>(Version::Hw, w).cycles;
    const Cycles sw = runOne<Rb>(Version::Sw, w).cycles;
    const Cycles expl = runOne<Rb>(Version::Explicit, w).cycles;

    EXPECT_LE(vol, hw);
    EXPECT_LT(hw, sw);
    EXPECT_LT(hw, expl);
}
