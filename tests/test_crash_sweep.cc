/** @file The exhaustive crash-schedule sweep (ISSUE 1 acceptance):
 * a persistent RbTree-backed kv-store workload is crashed at every
 * persistence-event index, each durable image is recovered through
 * Txn::recover, and structural invariants plus committed-data
 * durability are asserted on all of them — under both the strict
 * discard schedule and the random-retention (torn/reordered write)
 * schedule. Plus: checksum detection of corrupted undo entries. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.hh"
#include "crash/crash_sweep.hh"
#include "kvstore/kv_store.hh"
#include "nvm/txn.hh"
#include "obs/metrics.hh"
#include "txn_ir_workload.hh"

using namespace upr;

namespace
{

using Tree = RbTree<std::uint64_t, std::uint64_t>;

/** One workload operation, applied inside its own transaction. */
struct Op
{
    enum class Kind { Set, Erase };
    Kind kind;
    std::uint64_t key;
    std::uint64_t value;
};

constexpr std::uint64_t kSetupKeys = 16;

/** The transactional phase: inserts, updates, and deletes. */
const std::vector<Op> &
ops()
{
    static const std::vector<Op> kOps = {
        {Op::Kind::Set, 100, 1000}, // fresh insert
        {Op::Kind::Set, 3, 333},    // overwrite an existing key
        {Op::Kind::Erase, 7, 0},    // delete (tree rebalances)
        {Op::Kind::Set, 101, 1010},
        {Op::Kind::Erase, 0, 0},
        {Op::Kind::Set, 3, 444},    // second overwrite of the same key
    };
    return kOps;
}

/** Reference state after the setup phase plus the first @p n ops. */
std::map<std::uint64_t, std::uint64_t>
referenceState(std::size_t n)
{
    std::map<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        m[i] = i * 10;
    for (std::size_t i = 0; i < n && i < ops().size(); ++i) {
        const Op &op = ops()[i];
        if (op.kind == Op::Kind::Set) {
            m[op.key] = op.value;
        } else {
            m.erase(op.key);
        }
    }
    return m;
}

Runtime::Config
sweepConfig()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 1234; // fixed: the sweep requires a deterministic run
    return cfg;
}

/**
 * Build the store, open the crash window, and run every op in its own
 * transaction (under @p engine; @p group > 1 batches redo commits).
 * @p committed reports how many ops had committed when the crash hit
 * — with group commit, commits beyond the last flushed batch are
 * volatile by design.
 */
void
runWorkload(CrashInjector &injector, std::size_t &committed,
            EngineKind engine, unsigned group)
{
    committed = 0;
    Runtime rt(sweepConfig());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("sweep", 1 << 20, engine);
    rt.setGroupCommitSize(group);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    KvStore<Tree> store(env);
    rt.pools().pool(pool).setRootOff(static_cast<PoolOffset>(
        PtrRepr::offsetOf(store.index().header().bits())));

    // Setup phase: outside the crash window; becomes the durable
    // baseline when the injector enables the persistence domain.
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        store.set(i, i * 10);

    injector.attach(rt.pools().pool(pool).backing());

    for (const Op &op : ops()) {
        rt.beginTxn(pool);
        if (op.kind == Op::Kind::Set) {
            store.set(op.key, op.value);
        } else {
            store.index().erase(op.key);
        }
        rt.commitTxn();
        ++committed;
    }
}

/**
 * Reopen @p recovered in a fresh runtime and assert every invariant:
 * the tree is structurally valid, the allocator arena is consistent,
 * and the contents are exactly the committed prefix — with the
 * in-flight op either fully applied or fully absent, never torn.
 */
void
validateImage(Pool &recovered, std::size_t committed,
              std::uint64_t crashPoint, unsigned group)
{
    Backing image;
    image.assign(recovered.backing().raw());

    Runtime rt(sweepConfig());
    RuntimeScope scope(rt);
    const PoolId id = rt.pools().adoptImage(std::move(image), "crashed");

    rt.pools().allocator(id).checkConsistency();

    const PoolOffset root = rt.pools().pool(id).rootOff();
    ASSERT_NE(root, 0u) << "crash point " << crashPoint;
    MemEnv env = MemEnv::persistentEnv(rt, id);
    Tree tree(env, Ptr<Tree::Header>::fromBits(
                       PtrRepr::makeRelative(id, root)));
    tree.validate();

    std::map<std::uint64_t, std::uint64_t> actual;
    tree.forEach([&](std::uint64_t k, std::uint64_t v) {
        actual.emplace(k, v);
    });

    if (group <= 1) {
        const auto before = referenceState(committed);
        const auto after = referenceState(committed + 1);
        EXPECT_TRUE(actual == before || actual == after)
            << "crash point " << crashPoint
            << ": state matches neither " << committed << " nor "
            << (committed + 1) << " committed ops (actual size "
            << actual.size() << ")";
        return;
    }
    // Group commit coarsens atomicity to the batch boundary: the
    // durable state is the last flushed batch, or — if the crash hit
    // mid-flush — the one being flushed, and never anything between.
    const std::size_t floor_batch = committed - committed % group;
    const std::size_t next_batch =
        std::min(floor_batch + group, ops().size());
    const auto before = referenceState(floor_batch);
    const auto after = referenceState(next_batch);
    EXPECT_TRUE(actual == before || actual == after)
        << "crash point " << crashPoint
        << ": state matches neither batch boundary " << floor_batch
        << " nor " << next_batch << " (committed " << committed
        << ", actual size " << actual.size() << ")";
}

/**
 * Silence the (expected, numerous) torn-log warnings of a sweep —
 * but never a Panic/Fatal, which is about to abort the process and
 * whose message is the only clue to which crash point blew up.
 */
class QuietWarnings
{
  public:
    QuietWarnings()
    {
        setLogSink(+[](LogLevel level, const std::string &msg) {
            if (level == LogLevel::Panic || level == LogLevel::Fatal)
                std::fprintf(stderr, "%s\n", msg.c_str());
        });
    }
    ~QuietWarnings() { setLogSink(nullptr); }
};

void
runSweep(CrashMode mode, EngineKind engine = EngineKind::Undo,
         unsigned group = 1)
{
    QuietWarnings quiet;
    std::size_t committed = 0;
    CrashSweepConfig cfg;
    cfg.mode = mode;
    cfg.seed = 99;

    const CrashSweepResult result = crashSweep(
        [&committed, engine, group](CrashInjector &inj) {
            runWorkload(inj, committed, engine, group);
        },
        [&committed, group](Pool &pool, std::uint64_t n, bool) {
            validateImage(pool, committed, n, group);
        },
        cfg);

    if (engine == EngineKind::Undo) {
        // The acceptance bar: hundreds of distinct crash points, and
        // the sweep exercised both recovery paths (active log rolled
        // back, and between-transaction clean images).
        EXPECT_GT(result.crashPoints, 200u);
        EXPECT_GT(result.rollbacks, 0u);
    } else {
        // Redo stages writes in DRAM, so its persistence-event stream
        // is far shorter (only the journal flush sequence) — but the
        // sweep must still catch images mid-commit (a committed
        // journal replayed forward) and between commits.
        EXPECT_GT(result.crashPoints, 20u);
        EXPECT_GT(result.rollbacks, 0u);
    }
    EXPECT_GT(result.cleanImages, 0u);
}

} // namespace

TEST(CrashSweep, EveryCrashPointRecoversDiscardUnfenced)
{
    runSweep(CrashMode::DiscardUnfenced);
}

TEST(CrashSweep, EveryCrashPointRecoversRetainRandom)
{
    runSweep(CrashMode::RetainRandom);
}

TEST(CrashSweep, EveryCrashPointRecoversRetainEpoch)
{
    runSweep(CrashMode::RetainEpoch);
}

TEST(CrashSweep, EveryCrashPointRecoversRetainBoundedStale)
{
    runSweep(CrashMode::RetainBoundedStale);
}

// Same four schedules against the redo engine: journal committed at
// the control-block publish, replayed forward on recovery.

TEST(CrashSweepRedo, EveryCrashPointRecoversDiscardUnfenced)
{
    runSweep(CrashMode::DiscardUnfenced, EngineKind::Redo);
}

TEST(CrashSweepRedo, EveryCrashPointRecoversRetainRandom)
{
    runSweep(CrashMode::RetainRandom, EngineKind::Redo);
}

TEST(CrashSweepRedo, EveryCrashPointRecoversRetainEpoch)
{
    runSweep(CrashMode::RetainEpoch, EngineKind::Redo);
}

TEST(CrashSweepRedo, EveryCrashPointRecoversRetainBoundedStale)
{
    runSweep(CrashMode::RetainBoundedStale, EngineKind::Redo);
}

// And group commit (batches of 2): atomicity coarsens to the batch
// boundary but no crash point may ever show a half-batch.

TEST(CrashSweepGroupCommit, EveryCrashPointRecoversDiscardUnfenced)
{
    runSweep(CrashMode::DiscardUnfenced, EngineKind::Redo, 2);
}

TEST(CrashSweepGroupCommit, EveryCrashPointRecoversRetainRandom)
{
    runSweep(CrashMode::RetainRandom, EngineKind::Redo, 2);
}

TEST(CrashSweepGroupCommit, EveryCrashPointRecoversRetainEpoch)
{
    runSweep(CrashMode::RetainEpoch, EngineKind::Redo, 2);
}

TEST(CrashSweepGroupCommit, EveryCrashPointRecoversRetainBoundedStale)
{
    runSweep(CrashMode::RetainBoundedStale, EngineKind::Redo, 2);
}

// ---------------------------------------------------------------------
// Proof-driven logging elision under the same sweeps (ISSUE 9): the
// transactional IR workload whose plan the persistency analysis
// elided — fresh-alloc and dominated-write — crashed at every
// persistence event, under both txn engines and all four schedules.
// ---------------------------------------------------------------------

namespace
{

void
runElidedIrSweep(CrashMode mode, EngineKind engine)
{
    QuietWarnings quiet;
    const txnir::Program p = txnir::compile(/*elide=*/true);
    // The sweep proves nothing unless the plan actually elides: two
    // fresh-alloc stores and one dominated repeat per round.
    ASSERT_EQ(p.persistency.diags.errorCount(), 0u)
        << p.persistency.diags.render();
    ASSERT_EQ(p.persistency.elidedFresh, 2u);
    ASSERT_EQ(p.persistency.elidedDominated, 1u);

    // Crash-free reference run: the workload is deterministic, so
    // every sweep iteration allocates its cells at these offsets.
    const std::vector<PoolOffset> off = txnir::cellOffsets(
        txnir::run(p, engine, txnir::Tier::Interp));
    ASSERT_EQ(off.size(), txnir::kRounds);

    std::size_t committed = 0;
    CrashSweepConfig cfg;
    cfg.mode = mode;
    cfg.seed = 99;
    const CrashSweepResult result = crashSweep(
        [&](CrashInjector &inj) {
            txnir::run(p, engine, txnir::Tier::Interp, &inj,
                       &committed);
        },
        [&](Pool &pool, std::uint64_t n, bool) {
            const std::string err = txnir::checkImage(
                pool.backing().raw().toVector(), off, committed);
            EXPECT_TRUE(err.empty())
                << "crash point " << n << ": " << err;
        },
        cfg);

    EXPECT_GT(result.crashPoints, 10u);
    EXPECT_GT(result.rollbacks, 0u);
    EXPECT_GT(result.cleanImages, 0u);
}

} // namespace

TEST(CrashSweepElidedIr, UndoRecoversDiscardUnfenced)
{
    runElidedIrSweep(CrashMode::DiscardUnfenced, EngineKind::Undo);
}

TEST(CrashSweepElidedIr, UndoRecoversRetainRandom)
{
    runElidedIrSweep(CrashMode::RetainRandom, EngineKind::Undo);
}

TEST(CrashSweepElidedIr, UndoRecoversRetainEpoch)
{
    runElidedIrSweep(CrashMode::RetainEpoch, EngineKind::Undo);
}

TEST(CrashSweepElidedIr, UndoRecoversRetainBoundedStale)
{
    runElidedIrSweep(CrashMode::RetainBoundedStale, EngineKind::Undo);
}

TEST(CrashSweepElidedIr, RedoRecoversDiscardUnfenced)
{
    runElidedIrSweep(CrashMode::DiscardUnfenced, EngineKind::Redo);
}

TEST(CrashSweepElidedIr, RedoRecoversRetainRandom)
{
    runElidedIrSweep(CrashMode::RetainRandom, EngineKind::Redo);
}

TEST(CrashSweepElidedIr, RedoRecoversRetainEpoch)
{
    runElidedIrSweep(CrashMode::RetainEpoch, EngineKind::Redo);
}

TEST(CrashSweepElidedIr, RedoRecoversRetainBoundedStale)
{
    runElidedIrSweep(CrashMode::RetainBoundedStale, EngineKind::Redo);
}

// Elision must change the cost, never the data: the unelided plan and
// the elided plan — through the Interpreter and both FastExecutor
// tiers — commit every cell to byte-identical contents, while the
// log traffic measurably shrinks. Each engine's win shows up in its
// own currency: undo skips pre-image log appends, so its flush stream
// thins; redo keeps elided runs out of the journal (they flush
// straight to media in phase 0), so journaled bytes drop while raw
// flush count may not.
TEST(CrashSweepElidedIr, ElisionShrinksTheLogNotTheData)
{
    const txnir::Program plain = txnir::compile(/*elide=*/false);
    const txnir::Program elided = txnir::compile(/*elide=*/true);

    struct RunOut
    {
        std::vector<PoolOffset> off;
        std::vector<std::uint8_t> cells;
        std::uint64_t flushes = 0;
        std::uint64_t journal = 0;
        std::uint64_t elisions = 0;
    };

    for (EngineKind engine : {EngineKind::Undo, EngineKind::Redo}) {
        const bool undo = engine == EngineKind::Undo;
        SCOPED_TRACE(undo ? "undo" : "redo");
        const auto counter = [&](const obs::MetricsSnapshot &d,
                                 const std::string &name) {
            const auto it = d.counters.find(name);
            return it == d.counters.end() ? 0 : it->second;
        };
        const auto runOne = [&](const txnir::Program &p,
                                txnir::Tier tier) {
            const auto before =
                obs::MetricsRegistry::instance().snapshot();
            std::vector<std::uint8_t> image;
            const auto cells = txnir::run(p, engine, tier, nullptr,
                                          nullptr, &image);
            const auto d = obs::MetricsRegistry::instance()
                               .snapshot()
                               .minus(before);
            RunOut out;
            out.off = txnir::cellOffsets(cells);
            for (const PoolOffset o : out.off) {
                out.cells.insert(out.cells.end(), image.begin() + o,
                                 image.begin() + o + 64);
            }
            out.flushes = counter(
                d, undo ? "txn.undoFlushes" : "txn.redoFlushes");
            out.journal = counter(d, "txn.redoJournalBytes");
            out.elisions =
                counter(d, undo ? "txn.undoElidedWrites"
                                : "txn.redoElidedRuns");
            return out;
        };

        const RunOut base = runOne(plain, txnir::Tier::Interp);
        EXPECT_EQ(base.elisions, 0u);
        EXPECT_GT(base.flushes, 0u);
        for (txnir::Tier tier :
             {txnir::Tier::Interp, txnir::Tier::Model,
              txnir::Tier::Native}) {
            const RunOut run = runOne(elided, tier);
            EXPECT_EQ(run.off, base.off);
            EXPECT_EQ(run.cells, base.cells); // user data identical
            EXPECT_GT(run.elisions, 0u);
            if (undo)
                EXPECT_LT(run.flushes, base.flushes);
            else
                EXPECT_LT(run.journal, base.journal);
        }
    }
}

// ---------------------------------------------------------------------
// Checksum detection of corrupted undo entries
// ---------------------------------------------------------------------

namespace
{

/** Offset of the first log entry's payload within a fresh pool. */
constexpr Bytes kEntry0Payload = Pool::kHeaderSize + 16 /*control*/ +
                                 16 /*entry header*/;

std::uint64_t
peek64(const Pool &pool, Bytes off)
{
    std::uint64_t v;
    pool.backing().read(off, &v, sizeof(v));
    return v;
}

void
poke64(Pool &pool, Bytes off, std::uint64_t v)
{
    pool.backing().write(off, &v, sizeof(v));
}

} // namespace

TEST(CrashRecoveryHardening, FlippedPayloadByteIsDetectedNotReplayed)
{
    Pool pool(1, "t", 1 << 20);
    const PoolOffset data =
        static_cast<PoolOffset>(pool.header().arenaStart);
    poke64(pool, data, 100);

    const std::uint64_t warns_before = warnCount();
    {
        Txn txn(pool);
        txn.recordWrite(data, 8);
        poke64(pool, data, 111);

        // Crash snapshot, then a media bit-flip inside the logged
        // pre-image.
        Pool crashed("crashed", Backing(pool.backing()));
        std::uint8_t byte;
        crashed.backing().read(kEntry0Payload, &byte, 1);
        byte ^= 0x40;
        crashed.backing().write(kEntry0Payload, &byte, 1);

        EXPECT_TRUE(Txn::isActive(crashed));
        EXPECT_TRUE(Txn::recover(crashed));
        // The corrupt pre-image (which would have decoded as 100 ^
        // 0x40 << 8...) was NOT replayed: the new value stays.
        EXPECT_EQ(peek64(crashed, data), 111u);
        EXPECT_FALSE(Txn::isActive(crashed));
        txn.commit();
    }
    EXPECT_GT(warnCount(), warns_before);
}

TEST(CrashRecoveryHardening, CorruptMiddleEntryTruncatesTheLogTail)
{
    Pool pool(1, "t", 1 << 20);
    const PoolOffset a =
        static_cast<PoolOffset>(pool.header().arenaStart);
    const PoolOffset b = a + 64;
    poke64(pool, a, 100);
    poke64(pool, b, 200);

    Txn txn(pool);
    txn.recordWrite(a, 8);
    poke64(pool, a, 111);
    txn.recordWrite(b, 8);
    poke64(pool, b, 222);

    Pool crashed("crashed", Backing(pool.backing()));
    // Corrupt the FIRST entry: it and everything after it (the entry
    // boundary chain can no longer be trusted) must be discarded.
    std::uint8_t byte;
    crashed.backing().read(kEntry0Payload, &byte, 1);
    byte ^= 0x01;
    crashed.backing().write(kEntry0Payload, &byte, 1);

    EXPECT_TRUE(Txn::recover(crashed));
    EXPECT_EQ(peek64(crashed, a), 111u); // bad bytes not replayed
    EXPECT_EQ(peek64(crashed, b), 222u); // tail after the bad entry too
    EXPECT_FALSE(Txn::isActive(crashed));
    txn.commit();
}
