/** @file Tests for the branch-sensitive abstract interpreter over
 * the pointer-kind lattice: the eq-guard meet table, the narrowing
 * regression the flow-insensitive inference cannot get, infeasible
 * edge pruning, and loop fixpoints. */

#include <gtest/gtest.h>

#include "compiler/analysis/abstract_interp.hh"
#include "compiler/ir_parser.hh"
#include "compiler/type_inference.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

ValueId
idOfName(const Function &fn, const std::string &name)
{
    for (ValueId v = 0; v < fn.numValues(); ++v) {
        if (fn.valueNames[v] == name)
            return v;
    }
    upr_panic("no value %%%s", name.c_str());
}

} // namespace

TEST(MeetOnEq, DramPartnerPinsRepresentation)
{
    // DRAM objects have exactly one pointer form, so eq-true with a
    // known-VaDram pointer narrows an Unknown partner.
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Unknown,
                                     PtrKind::VaDram),
              PtrKind::VaDram);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::VaDram,
                                     PtrKind::VaDram),
              PtrKind::VaDram);
}

TEST(MeetOnEq, NvmPartnerProvesNothingAboutForm)
{
    // An NVM object circulates both as Ra and VaNvm (Fig 4): object
    // identity with an NVM pointer must NOT narrow the partner's
    // representation. This asymmetry is the soundness core.
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Unknown, PtrKind::Ra),
              PtrKind::Unknown);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Unknown,
                                     PtrKind::VaNvm),
              PtrKind::Unknown);
    // Both NVM forms naming one object is feasible, forms intact.
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Ra, PtrKind::VaNvm),
              PtrKind::Ra);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::VaNvm, PtrKind::Ra),
              PtrKind::VaNvm);
}

TEST(MeetOnEq, CrossMediumEqualityIsInfeasible)
{
    // A DRAM object and an NVM object are never the same object.
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::VaDram, PtrKind::Ra),
              PtrKind::NoInfo);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Ra, PtrKind::VaDram),
              PtrKind::NoInfo);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::VaDram,
                                     PtrKind::VaNvm),
              PtrKind::NoInfo);
}

TEST(MeetOnEq, UnknownAndBottomPartners)
{
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Ra, PtrKind::Unknown),
              PtrKind::Ra);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Unknown,
                                     PtrKind::Unknown),
              PtrKind::Unknown);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::NoInfo, PtrKind::Ra),
              PtrKind::NoInfo);
    EXPECT_EQ(FlowAnalysis::meetOnEq(PtrKind::Ra, PtrKind::NoInfo),
              PtrKind::NoInfo);
}

TEST(FlowAnalysis, GuardNarrowsWhereInferenceCannot)
{
    // The satellite regression: a pointer loaded from memory is
    // Unknown to the flow-insensitive inference on every path, but
    // equality with a known-DRAM pointer pins it on the taken edge.
    Module mod = parseModule(R"(
func @main() -> i64 {
entry:
  %buf = malloc 16
  %slotp = malloc 16
  storep %buf, %slotp
  %l = load.ptr %slotp
  %same = eq %l, %buf
  br %same, hit, out
hit:
  %one = const 1
  store %one, %l
  jmp out
out:
  %v = load.i64 %buf
  ret %v
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("main");
    const ValueId l = idOfName(fn, "l");

    // Base inference: one kind per register, necessarily Unknown.
    EXPECT_EQ(inf.kindOf(fn, l), PtrKind::Unknown);

    FlowAnalysis flow(mod, inf);
    EXPECT_EQ(flow.blockIn(fn, fn.blockByName("hit")).at(l),
              PtrKind::VaDram);
    // The join block still sees the unguarded value.
    EXPECT_EQ(flow.blockIn(fn, fn.blockByName("out")).at(l),
              PtrKind::Unknown);
}

TEST(FlowAnalysis, NvmGuardDoesNotNarrow)
{
    // Same shape with pmalloc: the guard proves object identity but
    // the loaded pointer may still be either NVM form, so it must
    // stay Unknown on the hit path.
    Module mod = parseModule(R"(
func @main() -> i64 {
entry:
  %buf = pmalloc 16
  %slotp = pmalloc 16
  storep %buf, %slotp
  %l = load.ptr %slotp
  %same = eq %l, %buf
  br %same, hit, out
hit:
  %one = const 1
  store %one, %l
  jmp out
out:
  %zero = const 0
  ret %zero
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("main");
    const ValueId l = idOfName(fn, "l");
    FlowAnalysis flow(mod, inf);
    EXPECT_EQ(flow.blockIn(fn, fn.blockByName("hit")).at(l),
              PtrKind::Unknown);
}

TEST(FlowAnalysis, InfeasibleEdgeDropsToBottom)
{
    // eq between provably different media can never be true: on the
    // true edge both operands drop to NoInfo (bottom).
    Module mod = parseModule(R"(
func @main() -> i64 {
entry:
  %d = malloc 16
  %p = pmalloc 16
  %di = ptrtoint %d
  %pi = ptrtoint %p
  %same = eq %di, %pi
  br %same, never, out
never:
  %one = const 1
  ret %one
out:
  %zero = const 0
  ret %zero
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("main");
    FlowAnalysis flow(mod, inf);
    const auto &never_in = flow.blockIn(fn, fn.blockByName("never"));
    EXPECT_EQ(never_in.at(idOfName(fn, "d")), PtrKind::NoInfo);
    EXPECT_EQ(never_in.at(idOfName(fn, "p")), PtrKind::NoInfo);
    // The fall-through edge keeps the full facts.
    const auto &out_in = flow.blockIn(fn, fn.blockByName("out"));
    EXPECT_EQ(out_in.at(idOfName(fn, "d")), PtrKind::VaDram);
    EXPECT_EQ(out_in.at(idOfName(fn, "p")), PtrKind::Ra);
}

TEST(FlowAnalysis, LoopPhiReachesFixpoint)
{
    // A loop whose phi joins two Ra pointers stays Ra at the head; a
    // phi mixing media converges to Unknown instead of oscillating.
    Module mod = parseModule(R"(
func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  %head = pmalloc 16
  %dram = malloc 16
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %cur = phi.ptr [entry, %head], [body, %next]
  %mix = phi.ptr [entry, %head], [body, %dram]
  %cont = lt %i, %n
  br %cont, body, exit
body:
  %one = const 1
  %inext = add %i, %one
  %next = gep %cur, 0
  jmp loop
exit:
  ret %zero
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("main");
    FlowAnalysis flow(mod, inf);
    const auto &loop_in = flow.blockIn(fn, fn.blockByName("loop"));
    EXPECT_EQ(loop_in.at(idOfName(fn, "cur")), PtrKind::Ra);
    EXPECT_EQ(loop_in.at(idOfName(fn, "mix")), PtrKind::Unknown);
}

TEST(FlowAnalysis, KindBeforeReplaysBlockPrefix)
{
    Module mod = parseModule(R"(
func @main() -> i64 {
entry:
  %p = pmalloc 16
  %q = load.ptr %p
  %r = gep %q, 8
  %zero = const 0
  ret %zero
}
)");
    const auto inf = inferPointerKinds(mod);
    const Function &fn = mod.get("main");
    FlowAnalysis flow(mod, inf);
    const ValueId q = idOfName(fn, "q");
    // Before its own definition %q is bottom; after, Unknown; and
    // the checked variant maps bottom to Unknown for conservative
    // clients.
    EXPECT_EQ(flow.kindBefore(fn, 0, 1, q), PtrKind::NoInfo);
    EXPECT_EQ(flow.kindBefore(fn, 0, 2, q), PtrKind::Unknown);
    EXPECT_EQ(flow.kindBeforeChecked(fn, 0, 1, q), PtrKind::Unknown);
    // gep preserves the operand's representation.
    EXPECT_EQ(flow.kindBefore(fn, 0, 3, idOfName(fn, "r")),
              PtrKind::Unknown);
}

TEST(FlowAnalysis, ParamsSeedFromInterproceduralFixpoint)
{
    Module mod = parseModule(R"(
func @use(%p: ptr) -> i64 {
entry:
  %v = load.i64 %p
  ret %v
}

func @main() -> i64 {
entry:
  %a = pmalloc 16
  %zero = const 0
  store %zero, %a
  %r = call.i64 @use(%a)
  pfree %a
  ret %r
}
)");
    // Whole-program inference pins @use's parameter to Ra; the flow
    // analysis starts its entry state from that fact.
    const auto inf = inferPointerKinds(mod, false);
    const Function &use = mod.get("use");
    FlowAnalysis flow(mod, inf);
    EXPECT_EQ(flow.blockIn(use, 0).at(idOfName(use, "p")),
              PtrKind::Ra);
}
