/** @file Tests for the proof-driven check-elision pass and its
 * contract: the elided plan is bit-identical to the original with a
 * strictly lower dynamic-check count whenever an executed site was
 * elided. */

#include <gtest/gtest.h>

#include "compiler/analysis/abstract_interp.hh"
#include "compiler/analysis/elision.hh"
#include "compiler/check_insertion.hh"
#include "compiler/demo_programs.hh"
#include "compiler/ir_parser.hh"
#include "compiler/type_inference.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

struct Elided
{
    Module mod;
    InferenceResult inf;
    CheckPlan before;
    CheckPlan after;
    ElisionResult res;
};

/** Parse, infer (library mode, like uprlint), plan, elide. */
Elided
elide(const char *source)
{
    Elided e;
    e.mod = parseModule(source);
    e.inf = inferPointerKinds(e.mod, true);
    e.before = insertChecks(e.mod, &e.inf);
    e.after = e.before;
    FlowAnalysis flow(e.mod, e.inf);
    e.res = elideChecks(e.mod, flow, e.after);
    return e;
}

/** Whether any proof with the given role mentions @p needle. */
bool
hasProof(const ElisionResult &res, const std::string &role,
         const std::string &needle)
{
    for (const ElisionProof &p : res.proofs) {
        if (p.role == role &&
            p.reason.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

TEST(Elision, Fig9DestCheckProvedRedundant)
{
    // The acceptance scenario: on the paper's Fig 9 program, the
    // storep destination's determineX is provably implied by the
    // address resolution at the same instruction.
    Elided e = elide(kFig9Source);
    EXPECT_GE(e.res.elidedSites, 1u);
    EXPECT_EQ(e.res.elidedSites, e.res.proofs.size());
    EXPECT_TRUE(hasProof(e.res, "dest", "dest-implied-by-addr"));

    // The @append storep (block 'doit', second instruction) carries
    // the elided-dest marker and lost its dynamic dest check.
    const Function &append = e.mod.get("append");
    const BlockId doit = append.blockByName("doit");
    const InstPlan &ip = e.after.perFunction.at("append").at(doit, 1);
    EXPECT_TRUE(ip.destElided);
    EXPECT_FALSE(ip.destDynamic);
    EXPECT_TRUE(e.before.perFunction.at("append").at(doit, 1)
                    .destDynamic);

    // Plan counters stay consistent: every proof removed exactly one
    // dynamic site.
    EXPECT_EQ(e.after.totalSites, e.before.totalSites);
    EXPECT_EQ(e.after.remainingSites + e.res.elidedSites,
              e.before.remainingSites);
    EXPECT_EQ(e.after.elidedSites, e.res.elidedSites);
}

TEST(Elision, Fig9BitIdenticalWithStrictlyFewerChecks)
{
    Elided e = elide(kFig9Source);
    const ElisionValidation v =
        validateElision(e.mod, e.before, e.after, "main", {8});
    EXPECT_TRUE(v.bitIdentical);
    EXPECT_EQ(v.resultBefore, 36u); // sum 1..8
    EXPECT_EQ(v.resultAfter, 36u);
    EXPECT_LT(v.checksAfter, v.checksBefore);
}

TEST(Elision, GuardNarrowingElidesTheCheck)
{
    // Rule 1: equality with a known-DRAM pointer pins the loaded
    // pointer's form on the hit path; the store's dynamic check
    // becomes a no-op passthrough.
    Elided e = elide(R"(
func @main() -> i64 {
entry:
  %buf = malloc 16
  %slotp = malloc 16
  storep %buf, %slotp
  %l = load.ptr %slotp
  %same = eq %l, %buf
  br %same, hit, out
hit:
  %one = const 1
  store %one, %l
  jmp out
out:
  %v = load.i64 %buf
  free %buf
  free %slotp
  ret %v
}
)");
    EXPECT_TRUE(hasProof(e.res, "addr",
                         "flow-proved-kind: address is va-dram"));
    const ElisionValidation v =
        validateElision(e.mod, e.before, e.after, "main", {});
    EXPECT_TRUE(v.bitIdentical);
    EXPECT_EQ(v.resultAfter, 1u);
    // The guarded path executes, so exactly that check disappears.
    EXPECT_EQ(v.checksBefore, 2u);
    EXPECT_EQ(v.checksAfter, 1u);
}

TEST(Elision, AvailableCheckAcrossBlocks)
{
    // Rule 3: the entry block checks %p's form; the re-check in the
    // dominated block reuses the outcome (conversion only). This is
    // the cross-block generalization of the flow_refine option.
    Elided e = elide(R"(
func @lib(%p: ptr, %c: i64) -> i64 {
entry:
  %a = load.i64 %p
  br %c, t, out
t:
  %b = load.i64 %p
  %s = add %a, %b
  ret %s
out:
  ret %a
}

func @main() -> i64 {
entry:
  %p = pmalloc 16
  %v = const 21
  store %v, %p
  %one = const 1
  %r = call.i64 @lib(%p, %one)
  pfree %p
  ret %r
}
)");
    EXPECT_TRUE(hasProof(e.res, "addr", "available-check"));

    const Function &lib = e.mod.get("lib");
    const BlockId t = lib.blockByName("t");
    const InstPlan &ip = e.after.perFunction.at("lib").at(t, 0);
    EXPECT_TRUE(ip.addrRefined);
    EXPECT_FALSE(ip.addrDynamic);

    const ElisionValidation v =
        validateElision(e.mod, e.before, e.after, "main", {});
    EXPECT_TRUE(v.bitIdentical);
    EXPECT_EQ(v.resultAfter, 42u);
    EXPECT_EQ(v.checksBefore, 2u);
    EXPECT_EQ(v.checksAfter, 1u);
}

TEST(Elision, NoChecksMeansNothingToElide)
{
    // Fully statically-typed module: inference already removed every
    // check, so elision has no addr/value/cmp work; there is no
    // storep either, so no dest proofs.
    Elided e = elide(R"(
func @main() -> i64 {
entry:
  %p = pmalloc 16
  %v = const 7
  store %v, %p
  %r = load.i64 %p
  pfree %p
  ret %r
}
)");
    EXPECT_EQ(e.res.elidedSites, 0u);
    EXPECT_TRUE(e.res.proofs.empty());
    const ElisionValidation v =
        validateElision(e.mod, e.before, e.after, "main", {});
    EXPECT_TRUE(v.bitIdentical);
    EXPECT_EQ(v.checksBefore, 0u);
    EXPECT_EQ(v.checksAfter, 0u);
}

TEST(Elision, ProofsCarryLocations)
{
    Elided e = elide(kFig9Source);
    ASSERT_FALSE(e.res.proofs.empty());
    for (const ElisionProof &p : e.res.proofs) {
        EXPECT_TRUE(p.loc.known()) << p.function << " " << p.role;
        EXPECT_FALSE(p.function.empty());
    }
}
