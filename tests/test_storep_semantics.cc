/** @file Table I, row by row: the semantics of load / storeD /
 * storeP for every combination of operand forms, as a table-driven
 * test over the HW version (the instruction set the table defines). */

#include <gtest/gtest.h>

#include "core/runtime.hh"

using namespace upr;

namespace
{

class TableI : public ::testing::Test
{
  protected:
    TableI()
    {
        Runtime::Config cfg;
        cfg.version = Version::Hw;
        cfg.seed = 41;
        rt = std::make_unique<Runtime>(cfg);
        pool = rt->createPool("t1", 8 << 20);

        nvm_obj = rt->pmallocBits(pool, 64);          // relative
        nvm_va = rt->resolveForAccess(nvm_obj, 1);    // VA, bit47=1
        dram_loc = rt->mallocBytes(64);               // VA, bit47=0
    }

    std::unique_ptr<Runtime> rt;
    PoolId pool = 0;
    PtrBits nvm_obj = 0;  //!< relative address of an NVM object
    SimAddr nvm_va = 0;   //!< its virtual address
    SimAddr dram_loc = 0; //!< a DRAM location
};

} // namespace

// ---------------------------------------------------------------------
// load: if Rs bit 63 is 1, the relative address converts to a virtual
// address before issue to the TLB/cache.
// ---------------------------------------------------------------------

TEST_F(TableI, LoadWithRelativeRs)
{
    rt->storeData<std::uint64_t>(nvm_va, 0x11);
    // Dereferencing the relative form reads the same cell.
    const SimAddr ea = rt->resolveForAccess(nvm_obj, 2);
    EXPECT_EQ(ea, nvm_va);
    EXPECT_EQ(rt->loadData<std::uint64_t>(ea), 0x11u);
}

TEST_F(TableI, LoadWithVirtualRsPassesThrough)
{
    rt->storeData<std::uint64_t>(dram_loc, 0x22);
    EXPECT_EQ(rt->resolveForAccess(PtrRepr::fromVa(dram_loc), 3),
              dram_loc);
    EXPECT_EQ(rt->loadData<std::uint64_t>(dram_loc), 0x22u);
}

// ---------------------------------------------------------------------
// storeD: a data store; Rd converts like a load address. The stored
// bits are data — never reformatted.
// ---------------------------------------------------------------------

TEST_F(TableI, StoreDWithRelativeRd)
{
    const SimAddr ea = rt->resolveForAccess(nvm_obj, 4);
    rt->storeData<std::uint64_t>(ea, 0xDA7A);
    EXPECT_EQ(rt->space().read<std::uint64_t>(nvm_va), 0xDA7Au);
}

TEST_F(TableI, StoreDDoesNotReformatPointerLookingData)
{
    // An integer that happens to have bit 63 set is data under
    // storeD: stored verbatim.
    const std::uint64_t fake = 0x8000'0001'0000'0040ULL;
    rt->storeData<std::uint64_t>(nvm_va, fake);
    EXPECT_EQ(rt->space().read<std::uint64_t>(nvm_va), fake);
}

// ---------------------------------------------------------------------
// storeP rows: Rs (value) form x Rd (destination medium).
// ---------------------------------------------------------------------

TEST_F(TableI, StorePRelativeValueToNvm)
{
    // Rs relative, Rd NVM: stored as-is (already canonical).
    rt->storePtr(nvm_va, nvm_obj, 5);
    EXPECT_EQ(rt->space().read<PtrBits>(nvm_va), nvm_obj);
}

TEST_F(TableI, StorePVirtualNvmValueToNvm)
{
    // Rs virtual (NVM): va2ra via the VALB before writing.
    const auto valb_before = rt->machine().valb().accesses();
    rt->storePtr(nvm_va, PtrRepr::fromVa(nvm_va), 6);
    const PtrBits stored = rt->space().read<PtrBits>(nvm_va);
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::Relative);
    EXPECT_EQ(stored, nvm_obj);
    EXPECT_GT(rt->machine().valb().accesses(), valb_before);
}

TEST_F(TableI, StorePRelativeValueToDram)
{
    // Rs relative, Rd DRAM: ra2va via the POLB before writing.
    rt->storePtr(dram_loc, nvm_obj, 7);
    const PtrBits stored = rt->space().read<PtrBits>(dram_loc);
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::VirtualNvm);
    EXPECT_EQ(PtrRepr::toVa(stored), nvm_va);
}

TEST_F(TableI, StorePVirtualDramValueToDram)
{
    // Rs virtual (DRAM), Rd DRAM: no conversion.
    const SimAddr other = rt->mallocBytes(8);
    rt->storePtr(dram_loc, PtrRepr::fromVa(other), 8);
    EXPECT_EQ(rt->space().read<PtrBits>(dram_loc),
              PtrRepr::fromVa(other));
}

TEST_F(TableI, StorePNullToEitherMedium)
{
    // p = NULL stores zero bits with no conversion (Fig 4 row).
    rt->storePtr(nvm_va, 0, 9);
    EXPECT_EQ(rt->space().read<PtrBits>(nvm_va), 0u);
    rt->storePtr(dram_loc, 0, 10);
    EXPECT_EQ(rt->space().read<PtrBits>(dram_loc), 0u);
}

TEST_F(TableI, StorePFaultRowStrictMode)
{
    // The Table I fault: a DRAM virtual address stored into NVM has
    // no persistent meaning; strict mode raises the storeP fault.
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.strictStoreP = true;
    cfg.seed = 41;
    Runtime strict(cfg);
    const PoolId p = strict.createPool("s", 8 << 20);
    const PtrBits obj = strict.pmallocBits(p, 64);
    const SimAddr loc = strict.resolveForAccess(obj, 1);
    const SimAddr dram = strict.mallocBytes(8);
    try {
        strict.storePtr(loc, PtrRepr::fromVa(dram), 2);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::StorePFault);
    }
}

TEST_F(TableI, StorePCountsAsItsOwnInstruction)
{
    const auto storeps = rt->machine().storePCount();
    const auto stores = rt->machine().stats().lookup("stores");
    rt->storePtr(nvm_va, nvm_obj, 11);
    EXPECT_EQ(rt->machine().storePCount(), storeps + 1);
    // storeD count unchanged: distinct instruction kinds.
    EXPECT_EQ(rt->machine().stats().lookup("stores"), stores);
}

TEST_F(TableI, StorePLatencyHiddenByFsmBuffer)
{
    // A storeP whose Rs needs a VALB walk still costs the pipeline
    // only the issue latency (plus the storeD-path memory access).
    rt->machine().flushAll();
    const Cycles t0 = rt->machine().now();
    rt->storePtr(nvm_va, PtrRepr::fromVa(nvm_va), 12);
    const Cycles storep_cost = rt->machine().now() - t0;

    rt->machine().flushAll();
    const Cycles t1 = rt->machine().now();
    rt->storeData<std::uint64_t>(nvm_va, 1);
    const Cycles stored_cost = rt->machine().now() - t1;

    EXPECT_LE(storep_cost,
              stored_cost + rt->config().machine.storePIssueLatency +
                  rt->config().machine.valbHitLatency);
}
