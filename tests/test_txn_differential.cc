/** @file Differential equivalence of the two transaction engines
 * (ISSUE 7 acceptance): the same randomized transactional workload is
 * run against an undo pool and a redo pool, and the engines must be
 * observationally identical — byte-identical user data after a full
 * run, and at every crash point each engine recovers to a state from
 * the same committed-prefix family (all-or-nothing per transaction,
 * against one shared reference model). Aborts, overwrites, and empty
 * transactions are part of the workload on both sides. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "crash/crash_sweep.hh"
#include "kvstore/kv_store.hh"
#include "nvm/engine.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

using Tree = RbTree<std::uint64_t, std::uint64_t>;

/** SplitMix64: the repo's standard deterministic test RNG. */
std::uint64_t
mix(std::uint64_t &state)
{
    state += 0x9E37'79B9'7F4A'7C15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D0'49BB'1331'11EBULL;
    return x ^ (x >> 31);
}

constexpr std::uint64_t kWorkloadSeed = 0xD1FF'5EEDULL;
constexpr std::uint64_t kSetupKeys = 12;
constexpr std::size_t kTxns = 24;

/** One transaction of the randomized workload. */
struct TxnPlan
{
    bool abort = false;  //!< discarded instead of committed
    bool empty = false;  //!< begin/commit with no operations
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sets;
    std::vector<std::uint64_t> erases;
};

/**
 * The workload is derived from the seed once; both engines (and the
 * reference model) consume the exact same plan.
 */
const std::vector<TxnPlan> &
plans()
{
    static const std::vector<TxnPlan> kPlans = [] {
        std::vector<TxnPlan> out;
        std::uint64_t rng = kWorkloadSeed;
        for (std::size_t t = 0; t < kTxns; ++t) {
            TxnPlan p;
            const std::uint64_t shape = mix(rng) % 8;
            p.abort = shape == 0;
            p.empty = shape == 1;
            if (!p.empty) {
                const std::size_t n = 1 + mix(rng) % 3;
                for (std::size_t i = 0; i < n; ++i) {
                    // Small key space on purpose: overwrites and
                    // erase-then-reinsert collisions are the point.
                    const std::uint64_t key = mix(rng) % 20;
                    if (mix(rng) % 4 == 0)
                        p.erases.push_back(key);
                    else
                        p.sets.emplace_back(key, mix(rng));
                }
            }
            out.push_back(std::move(p));
        }
        return out;
    }();
    return kPlans;
}

/**
 * Reference state after the setup phase plus the first @p n
 * *committed* transactions. @p n counts successful commits the same
 * way runWorkload() does: plans the workload aborts never advance it
 * (and never affect durable state).
 */
std::map<std::uint64_t, std::uint64_t>
referenceState(std::size_t n)
{
    std::map<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        m[i] = i * 7;
    std::size_t done = 0;
    for (const TxnPlan &p : plans()) {
        if (done == n)
            break;
        if (p.abort)
            continue;
        for (const auto &[k, v] : p.sets)
            m[k] = v;
        for (std::uint64_t k : p.erases)
            m.erase(k);
        ++done;
    }
    return m;
}

Runtime::Config
config()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 1234;
    return cfg;
}

/**
 * Run the full workload on a pool of @p engine; returns the final
 * image bytes. @p injector (optional) opens the crash window after
 * setup. @p committed counts *successful* transactions — txns the
 * plan aborts do not advance it, matching referenceState().
 */
std::vector<std::uint8_t>
runWorkload(EngineKind engine, CrashInjector *injector,
            std::size_t &committed)
{
    committed = 0;
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("diff", 1 << 20, engine);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    KvStore<Tree> store(env);
    rt.pools().pool(pool).setRootOff(static_cast<PoolOffset>(
        PtrRepr::offsetOf(store.index().header().bits())));
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        store.set(i, i * 7);

    if (injector)
        injector->attach(rt.pools().pool(pool).backing());

    for (const TxnPlan &p : plans()) {
        rt.beginTxn(pool);
        for (const auto &[k, v] : p.sets)
            store.set(k, v);
        for (std::uint64_t k : p.erases)
            store.index().erase(k); // returns false when absent
        if (p.abort) {
            rt.abortTxn();
        } else {
            rt.commitTxn();
            ++committed;
        }
    }
    return rt.pools().pool(pool).backing().raw().toVector();
}

/** Read the recovered tree of @p image into a map, validating it. */
std::map<std::uint64_t, std::uint64_t>
treeContents(std::vector<std::uint8_t> image)
{
    Backing b;
    b.assign(std::move(image));
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId id = rt.pools().adoptImage(std::move(b), "adopted");
    rt.pools().allocator(id).checkConsistency();
    const PoolOffset root = rt.pools().pool(id).rootOff();
    EXPECT_NE(root, 0u);
    MemEnv env = MemEnv::persistentEnv(rt, id);
    Tree tree(env, Ptr<Tree::Header>::fromBits(
                       PtrRepr::makeRelative(id, root)));
    tree.validate();
    std::map<std::uint64_t, std::uint64_t> out;
    tree.forEach([&](std::uint64_t k, std::uint64_t v) {
        out.emplace(k, v);
    });
    return out;
}

class QuietWarnings
{
  public:
    QuietWarnings()
    {
        setLogSink(+[](LogLevel level, const std::string &msg) {
            if (level == LogLevel::Panic || level == LogLevel::Fatal)
                std::fprintf(stderr, "%s\n", msg.c_str());
        });
    }
    ~QuietWarnings() { setLogSink(nullptr); }
};

} // namespace

/**
 * No-crash differential: after the full workload, the *user data* of
 * the undo pool and the redo pool is byte-identical — every arena
 * byte, not just the logical tree contents. Only the log region (and
 * the engine tag in the header) may differ between the two images.
 */
TEST(TxnDifferential, FullRunUserDataIsByteIdentical)
{
    std::size_t committed_u = 0, committed_r = 0;
    const auto undo =
        runWorkload(EngineKind::Undo, nullptr, committed_u);
    const auto redo =
        runWorkload(EngineKind::Redo, nullptr, committed_r);
    ASSERT_EQ(committed_u, committed_r);
    ASSERT_EQ(undo.size(), redo.size());

    PoolHeader hu, hr;
    std::memcpy(&hu, undo.data(), sizeof(hu));
    std::memcpy(&hr, redo.data(), sizeof(hr));
    ASSERT_EQ(hu.arenaStart, hr.arenaStart);
    ASSERT_EQ(hu.rootOff, hr.rootOff);

    std::size_t mismatches = 0;
    for (std::size_t i = static_cast<std::size_t>(hu.arenaStart);
         i < undo.size(); ++i)
        mismatches += undo[i] != redo[i];
    EXPECT_EQ(mismatches, 0u)
        << mismatches << " arena bytes differ between the engines";

    // And both match the reference model exactly.
    const auto expect = referenceState(committed_u);
    EXPECT_EQ(treeContents(undo), expect);
    EXPECT_EQ(treeContents(redo), expect);
}

namespace
{

/**
 * Crash-point differential half: sweep every crash point of one
 * engine and require recovery to land exactly on a committed-prefix
 * state of the shared reference model. Running this for both engines
 * proves crash-recovery equivalence: neither engine can reach a state
 * the other (or the model) cannot.
 */
void
runCrashDifferential(EngineKind engine, CrashMode mode)
{
    QuietWarnings quiet;
    std::size_t committed = 0;
    CrashSweepConfig cfg;
    cfg.mode = mode;
    cfg.seed = 7;

    const CrashSweepResult result = crashSweep(
        [&committed, engine](CrashInjector &inj) {
            // committed is written incrementally: the injector aborts
            // the workload by throwing, so it must be current at every
            // commit, not just at workload end.
            (void)runWorkload(engine, &inj, committed);
        },
        [&committed, engine](Pool &pool, std::uint64_t n, bool) {
            const auto actual =
                treeContents(pool.backing().raw().toVector());
            const auto before = referenceState(committed);
            const auto after = referenceState(committed + 1);
            EXPECT_TRUE(actual == before || actual == after)
                << engineKindName(engine) << " crash point " << n
                << ": recovered state matches no committed prefix ("
                << committed << " committed, actual size "
                << actual.size() << ")";
        },
        cfg);

    EXPECT_GT(result.crashPoints, 10u);
    EXPECT_GT(result.rollbacks, 0u);
    EXPECT_GT(result.cleanImages, 0u);
}

} // namespace

TEST(TxnDifferential, UndoRecoversToCommittedPrefixAtEveryCrashPoint)
{
    runCrashDifferential(EngineKind::Undo, CrashMode::DiscardUnfenced);
}

TEST(TxnDifferential, RedoRecoversToCommittedPrefixAtEveryCrashPoint)
{
    runCrashDifferential(EngineKind::Redo, CrashMode::DiscardUnfenced);
}

TEST(TxnDifferential, UndoRecoversUnderRetainRandom)
{
    runCrashDifferential(EngineKind::Undo, CrashMode::RetainRandom);
}

TEST(TxnDifferential, RedoRecoversUnderRetainRandom)
{
    runCrashDifferential(EngineKind::Redo, CrashMode::RetainRandom);
}

/**
 * Cross-engine guard: driving a pool with the wrong engine's API is a
 * typed EngineMismatch fault, not a misparse of the log region.
 */
TEST(TxnDifferential, WrongEngineIsATypedFault)
{
    Pool undo_pool(1, "u", 1 << 20, EngineKind::Undo);
    Pool redo_pool(2, "r", 1 << 20, EngineKind::Redo);

    EXPECT_THROW((void)RedoBatch(undo_pool), Fault);
    EXPECT_THROW((void)Txn(redo_pool), Fault);
    try {
        Txn txn(redo_pool);
        FAIL() << "undo Txn accepted a redo pool";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::EngineMismatch);
    }
    try {
        RedoBatch batch(undo_pool);
        FAIL() << "RedoBatch accepted an undo pool";
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::EngineMismatch);
    }
    // Recovery entry points are guarded the same way.
    EXPECT_THROW((void)Txn::recover(redo_pool), Fault);
    EXPECT_THROW((void)RedoLog::recover(undo_pool), Fault);
    // The dispatching facade, by contrast, accepts both.
    EXPECT_FALSE(TxnEngine::recover(undo_pool));
    EXPECT_FALSE(TxnEngine::recover(redo_pool));
}
