/** @file Unit tests for the tagged pointer representation (Fig 2). */

#include <gtest/gtest.h>

#include "core/pointer_repr.hh"

using namespace upr;

TEST(PtrRepr, RelativeEncodeDecodeRoundTrip)
{
    const PtrBits p = PtrRepr::makeRelative(5, 0x1234);
    EXPECT_TRUE(PtrRepr::isRelative(p));
    EXPECT_EQ(PtrRepr::poolOf(p), 5u);
    EXPECT_EQ(PtrRepr::offsetOf(p), 0x1234u);
    EXPECT_EQ(PtrRepr::determineY(p), PtrForm::Relative);
}

TEST(PtrRepr, MaxFieldsRoundTrip)
{
    const PoolId max_pool = PtrRepr::kMaxPoolId;
    const PoolOffset max_off = 0xffffffffU;
    const PtrBits p = PtrRepr::makeRelative(max_pool, max_off);
    EXPECT_EQ(PtrRepr::poolOf(p), max_pool);
    EXPECT_EQ(PtrRepr::offsetOf(p), max_off);
}

TEST(PtrRepr, PoolIdZeroAndOverflowRejected)
{
    EXPECT_DEATH(PtrRepr::makeRelative(0, 0), "not encodable");
    EXPECT_DEATH(PtrRepr::makeRelative(PtrRepr::kMaxPoolId + 1, 0),
                 "not encodable");
}

TEST(PtrRepr, DetermineYClassifiesVirtualForms)
{
    EXPECT_EQ(PtrRepr::determineY(0x1000), PtrForm::VirtualDram);
    EXPECT_EQ(PtrRepr::determineY(Layout::kNvmBase + 0x1000),
              PtrForm::VirtualNvm);
    const PtrBits rel = PtrRepr::makeRelative(1, 0);
    EXPECT_EQ(PtrRepr::determineY(rel), PtrForm::Relative);
}

TEST(PtrRepr, DetermineXChecksBit47)
{
    EXPECT_EQ(PtrRepr::determineX(0x1000), LocKind::Dram);
    EXPECT_EQ(PtrRepr::determineX(Layout::kNvmBase), LocKind::Nvm);
    EXPECT_EQ(PtrRepr::determineX(Layout::kNvmBase - 1), LocKind::Dram);
}

TEST(PtrRepr, NullIsAllZeros)
{
    EXPECT_TRUE(PtrRepr::isNull(0));
    EXPECT_FALSE(PtrRepr::isNull(1));
    EXPECT_FALSE(PtrRepr::isNull(PtrRepr::makeRelative(1, 0)));
}

TEST(PtrRepr, VaPassThrough)
{
    EXPECT_EQ(PtrRepr::fromVa(0xABCD), 0xABCDULL);
    EXPECT_EQ(PtrRepr::toVa(0xABCD), 0xABCDULL);
    EXPECT_DEATH(PtrRepr::fromVa(1ULL << 48), "exceeds 48 bits");
}

TEST(PtrRepr, AddBytesOnVirtual)
{
    EXPECT_EQ(PtrRepr::addBytes(0x1000, 16), 0x1010ULL);
    EXPECT_EQ(PtrRepr::addBytes(0x1000, -16), 0xFF0ULL);
}

TEST(PtrRepr, AddBytesOnRelativeStaysRelative)
{
    const PtrBits p = PtrRepr::makeRelative(3, 0x100);
    const PtrBits q = PtrRepr::addBytes(p, 0x20);
    EXPECT_TRUE(PtrRepr::isRelative(q));
    EXPECT_EQ(PtrRepr::poolOf(q), 3u);
    EXPECT_EQ(PtrRepr::offsetOf(q), 0x120u);
    const PtrBits r = PtrRepr::addBytes(q, -0x120);
    EXPECT_EQ(PtrRepr::offsetOf(r), 0u);
}

TEST(PtrRepr, AddBytesOverflowingOffsetPanics)
{
    const PtrBits p = PtrRepr::makeRelative(3, 0xffffffffU);
    EXPECT_DEATH(PtrRepr::addBytes(p, 1), "overflows");
    const PtrBits q = PtrRepr::makeRelative(3, 0);
    EXPECT_DEATH(PtrRepr::addBytes(q, -1), "overflows");
}

TEST(PtrRepr, RelativeAndVaBitsNeverCollide)
{
    // Any valid VA has bit 63 clear; any relative has it set.
    const PtrBits rel = PtrRepr::makeRelative(1, 0);
    EXPECT_NE(rel & (1ULL << 63), 0u);
    EXPECT_EQ(PtrRepr::fromVa(Layout::kVaEnd - 1) & (1ULL << 63), 0u);
}
