/** @file Fence-accounting regression tests (ISSUE 7): the exact
 * flush/fence cost of each engine, observed through the metrics
 * registry, must match the documented model:
 *
 *   undo, k recorded writes ... k+3 fences, 3k+2 flushes per txn
 *   redo, r coalesced runs  ... 4 fences,   2r+2 flushes per commit
 *   group commit, batch of B with R total runs
 *                           ... 4 fences,   2R+2 flushes per *batch*
 *   empty redo transaction  ... 0 fences,   0 flushes
 *
 * Any drift in these counters is an ordering-protocol change and must
 * be made deliberately (update docs/CRASH_CONSISTENCY.md — and this
 * file — in the same commit). */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/ptr.hh"
#include "core/runtime.hh"
#include "nvm/engine.hh"
#include "nvm/txn.hh"
#include "obs/metrics.hh"

using namespace upr;

namespace
{

Runtime::Config
config()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 1234;
    return cfg;
}

/** Registry-level counter delta; 0 when the group never registered. */
std::uint64_t
get(const obs::MetricsSnapshot &d, const std::string &name)
{
    const auto it = d.counters.find(name);
    return it == d.counters.end() ? 0 : it->second;
}

obs::MetricsSnapshot
snap()
{
    return obs::MetricsRegistry::instance().snapshot();
}

/**
 * One transaction of @p writes raw 8-byte writes at 64-byte-spaced
 * arena offsets: far enough apart that the redo stage cannot coalesce
 * them (runs == writes) and each is one undo recordWrite.
 */
void
runTxn(Runtime &rt, PoolId pool, std::size_t writes,
       std::uint64_t salt)
{
    Pool &p = rt.pools().pool(pool);
    const Bytes base = p.header().arenaStart + 64;
    rt.beginTxn(pool);
    for (std::size_t w = 0; w < writes; ++w) {
        const std::uint64_t value = salt * 1000 + w;
        p.backing().write(base + 64 * w, &value, sizeof(value));
    }
    rt.commitTxn();
}

} // namespace

TEST(TxnFences, UndoTxnPaysKPlus3FencesAnd3KPlus2Flushes)
{
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("u", 1 << 20, EngineKind::Undo);
    // Snapshot *after* pool creation: formatting the log control block
    // itself costs one undo flush+fence.
    for (std::size_t k : {std::size_t{0}, std::size_t{1},
                          std::size_t{3}, std::size_t{7}}) {
        const auto before = snap();
        runTxn(rt, pool, k, k);
        const auto d = snap().minus(before);
        EXPECT_EQ(get(d, "txn.undoFences"), k + 3) << "k=" << k;
        EXPECT_EQ(get(d, "txn.undoFlushes"), 3 * k + 2) << "k=" << k;
        EXPECT_EQ(get(d, "txn.undoCommits"), 1u) << "k=" << k;
        // The undo engine never touches the redo counters.
        EXPECT_EQ(get(d, "txn.redoFences"), 0u) << "k=" << k;
        EXPECT_EQ(get(d, "txn.redoFlushes"), 0u) << "k=" << k;
    }
}

TEST(TxnFences, RedoSoloCommitPaysFourFencesAnd2RPlus2Flushes)
{
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("r", 1 << 20, EngineKind::Redo);
    for (std::size_t r : {std::size_t{1}, std::size_t{3},
                          std::size_t{7}}) {
        const auto before = snap();
        runTxn(rt, pool, r, r);
        const auto d = snap().minus(before);
        // 4 fences regardless of size: journal, commit point, apply,
        // truncate. Flushes: r journal entries + 1 control, r applies
        // + 1 truncate.
        EXPECT_EQ(get(d, "txn.redoFences"), 4u) << "r=" << r;
        EXPECT_EQ(get(d, "txn.redoFlushes"), 2 * r + 2) << "r=" << r;
        EXPECT_EQ(get(d, "txn.redoCommits"), 1u) << "r=" << r;
        EXPECT_EQ(get(d, "txn.groupBatches"), 1u) << "r=" << r;
        EXPECT_EQ(get(d, "txn.groupTxns"), 1u) << "r=" << r;
        EXPECT_EQ(get(d, "txn.undoFences"), 0u) << "r=" << r;
        EXPECT_EQ(get(d, "txn.undoFlushes"), 0u) << "r=" << r;
    }
}

TEST(TxnFences, EmptyRedoTxnIsFree)
{
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("e", 1 << 20, EngineKind::Redo);
    const auto before = snap();
    rt.beginTxn(pool);
    rt.commitTxn();
    const auto d = snap().minus(before);
    EXPECT_EQ(get(d, "txn.redoFences"), 0u);
    EXPECT_EQ(get(d, "txn.redoFlushes"), 0u);
    EXPECT_EQ(get(d, "txn.redoCommits"), 1u);
}

TEST(TxnFences, UndoFreshElisionSkipsPreImageCost)
{
    // k writes of which e carry an elide-fresh-alloc proof: each
    // elided write skips its pre-image log entry (2 flushes + 1
    // fence) but still flushes at commit, so the txn costs
    // 3k+2-2e flushes and k+3-e fences.
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool =
        rt.createPool("uf", 1 << 20, EngineKind::Undo);
    Pool &p = rt.pools().pool(pool);
    const Bytes base = p.header().arenaStart + 64;
    const std::size_t k = 5, e = 2;

    const auto before = snap();
    rt.beginTxn(pool);
    for (std::size_t w = 0; w < k; ++w) {
        const std::uint64_t value = 100 + w;
        if (w < e) {
            ScopedTxnLogHint hint(rt, TxnLogHint::ElideFresh);
            p.backing().write(base + 64 * w, &value, sizeof(value));
        } else {
            p.backing().write(base + 64 * w, &value, sizeof(value));
        }
    }
    rt.commitTxn();
    const auto d = snap().minus(before);
    EXPECT_EQ(get(d, "txn.undoFences"), k + 3 - e);
    EXPECT_EQ(get(d, "txn.undoFlushes"), 3 * k + 2 - 2 * e);
    EXPECT_EQ(get(d, "txn.undoElidedWrites"), e);
    EXPECT_EQ(get(d, "txn.undoCommits"), 1u);
}

TEST(TxnFences, UndoDominatedElisionMakesRepeatWritesFree)
{
    // k cells each written twice: the first write logs its pre-image,
    // the second carries an elide-dominated-write proof and adds no
    // media work at all (its range is already dirty), so 2k writes
    // cost exactly what k must-log writes do.
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool =
        rt.createPool("ud", 1 << 20, EngineKind::Undo);
    Pool &p = rt.pools().pool(pool);
    const Bytes base = p.header().arenaStart + 64;
    const std::size_t k = 4;

    const auto before = snap();
    rt.beginTxn(pool);
    for (std::size_t w = 0; w < k; ++w) {
        const std::uint64_t value = 200 + w;
        p.backing().write(base + 64 * w, &value, sizeof(value));
    }
    for (std::size_t w = 0; w < k; ++w) {
        const std::uint64_t value = 300 + w;
        ScopedTxnLogHint hint(rt, TxnLogHint::ElideDominated);
        p.backing().write(base + 64 * w, &value, sizeof(value));
    }
    rt.commitTxn();
    const auto d = snap().minus(before);
    EXPECT_EQ(get(d, "txn.undoFences"), k + 3);
    EXPECT_EQ(get(d, "txn.undoFlushes"), 3 * k + 2);
    EXPECT_EQ(get(d, "txn.undoElidedWrites"), k);
}

TEST(TxnFences, RedoFreshElisionSkipsJournalEntries)
{
    // r must-log runs + e proven-fresh runs: the elided runs are
    // applied write-through before fence 1 (one flush each) and
    // never journaled — 2r+2+e flushes, still exactly 4 fences,
    // and the journal holds r entries, not r+e.
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool =
        rt.createPool("rf", 1 << 20, EngineKind::Redo);
    Pool &p = rt.pools().pool(pool);
    const Bytes base = p.header().arenaStart + 64;
    const std::size_t r = 3, e = 2;

    const auto before = snap();
    rt.beginTxn(pool);
    for (std::size_t w = 0; w < r; ++w) {
        const std::uint64_t value = 400 + w;
        p.backing().write(base + 64 * w, &value, sizeof(value));
    }
    for (std::size_t w = 0; w < e; ++w) {
        const std::uint64_t value = 500 + w;
        ScopedTxnLogHint hint(rt, TxnLogHint::ElideFresh);
        p.backing().write(base + 64 * (r + w), &value,
                          sizeof(value));
    }
    rt.commitTxn();
    const auto d = snap().minus(before);
    EXPECT_EQ(get(d, "txn.redoFences"), 4u);
    EXPECT_EQ(get(d, "txn.redoFlushes"), 2 * r + 2 + e);
    EXPECT_EQ(get(d, "txn.redoJournalEntries"), r);
    EXPECT_EQ(get(d, "txn.redoElidedRuns"), e);
}

TEST(TxnFences, RedoAllElidedBatchSkipsThePublishProtocol)
{
    // Every staged byte proven fresh: no journal entry, no publish,
    // no truncate — e write-through flushes and a single fence.
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool =
        rt.createPool("re", 1 << 20, EngineKind::Redo);
    Pool &p = rt.pools().pool(pool);
    const Bytes base = p.header().arenaStart + 64;
    const std::size_t e = 3;

    const auto before = snap();
    rt.beginTxn(pool);
    for (std::size_t w = 0; w < e; ++w) {
        const std::uint64_t value = 600 + w;
        ScopedTxnLogHint hint(rt, TxnLogHint::ElideFresh);
        p.backing().write(base + 64 * w, &value, sizeof(value));
    }
    rt.commitTxn();
    const auto d = snap().minus(before);
    EXPECT_EQ(get(d, "txn.redoFences"), 1u);
    EXPECT_EQ(get(d, "txn.redoFlushes"), e);
    EXPECT_EQ(get(d, "txn.redoJournalEntries"), 0u);
    EXPECT_EQ(get(d, "txn.redoElidedRuns"), e);
    EXPECT_EQ(get(d, "txn.redoCommits"), 1u);
}

TEST(TxnFences, GroupCommitBatchOfKPaysOneJournalFlushAndFence)
{
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("g", 1 << 20, EngineKind::Redo);
    rt.setGroupCommitSize(3);

    const auto before = snap();
    // Three 2-write txns at disjoint offsets: R = 6 runs in the batch.
    runTxn(rt, pool, 2, 1);
    EXPECT_EQ(rt.pendingGroupTxns(), 1u);
    {
        // Still staged in DRAM: nothing has been journaled or fenced.
        const auto d = snap().minus(before);
        EXPECT_EQ(get(d, "txn.redoFences"), 0u);
        EXPECT_EQ(get(d, "txn.redoFlushes"), 0u);
    }
    Pool &p = rt.pools().pool(pool);
    const Bytes base = p.header().arenaStart + 64;
    rt.beginTxn(pool);
    std::uint64_t v = 42;
    p.backing().write(base + 64 * 8, &v, sizeof(v));
    p.backing().write(base + 64 * 9, &v, sizeof(v));
    rt.commitTxn();
    EXPECT_EQ(rt.pendingGroupTxns(), 2u);
    rt.beginTxn(pool);
    p.backing().write(base + 64 * 10, &v, sizeof(v));
    p.backing().write(base + 64 * 11, &v, sizeof(v));
    rt.commitTxn(); // third commit reaches the batch size: flush
    EXPECT_EQ(rt.pendingGroupTxns(), 0u);

    const auto d = snap().minus(before);
    EXPECT_EQ(get(d, "txn.redoFences"), 4u);
    EXPECT_EQ(get(d, "txn.redoFlushes"), 2u * 6 + 2);
    EXPECT_EQ(get(d, "txn.redoCommits"), 3u);
    EXPECT_EQ(get(d, "txn.groupBatches"), 1u);
    EXPECT_EQ(get(d, "txn.groupTxns"), 3u);

    // The headline claim: a batch of 3 two-write txns paid 4 fences
    // where the undo engine would have paid 3 * (2+3) = 15.
    EXPECT_LT(get(d, "txn.redoFences"),
              3u * (2 + 3));
}

TEST(TxnFences, FlushGroupDrainsAPartialBatch)
{
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("p", 1 << 20, EngineKind::Redo);
    rt.setGroupCommitSize(4);

    const auto before = snap();
    runTxn(rt, pool, 1, 1);
    runTxn(rt, pool, 2, 2); // offsets overlap txn 1: runs coalesce
    EXPECT_EQ(rt.pendingGroupTxns(), 2u);
    rt.flushGroup();
    EXPECT_EQ(rt.pendingGroupTxns(), 0u);

    // runTxn(1,..) wrote offset base+0; runTxn(2,..) wrote base+0 and
    // base+64 — the staged batch holds 2 distinct runs, not 3.
    const auto d = snap().minus(before);
    EXPECT_EQ(get(d, "txn.redoFences"), 4u);
    EXPECT_EQ(get(d, "txn.redoFlushes"), 2u * 2 + 2);
    EXPECT_EQ(get(d, "txn.groupBatches"), 1u);
    EXPECT_EQ(get(d, "txn.groupTxns"), 2u);

    // An empty drain is free.
    const auto before2 = snap();
    rt.flushGroup();
    const auto d2 = snap().minus(before2);
    EXPECT_EQ(get(d2, "txn.redoFences"), 0u);
    EXPECT_EQ(get(d2, "txn.redoFlushes"), 0u);
}
