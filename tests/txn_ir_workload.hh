/**
 * @file
 * The elision-enabled transactional IR workload shared by the crash
 * sweep and the hostile-media fault sweep (ISSUE 9 acceptance): every
 * call of @round runs two transactions over one freshly pmalloc'd
 * cell, exercising every LogMode the persistency analysis can prove —
 * fresh-alloc elision in the first transaction, then a must-log
 * pre-image followed by a dominated-write elision in the second. The
 * sweeps crash (and corrupt) it at every persistence event and assert
 * that proof-driven logging elision never costs recoverability.
 */

#ifndef UPR_TESTS_TXN_IR_WORKLOAD_HH
#define UPR_TESTS_TXN_IR_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/analysis/abstract_interp.hh"
#include "compiler/analysis/persistency.hh"
#include "compiler/check_insertion.hh"
#include "compiler/exec_fast.hh"
#include "compiler/exec_lower.hh"
#include "compiler/interpreter.hh"
#include "compiler/ir_parser.hh"
#include "compiler/type_inference.hh"
#include "core/runtime.hh"
#include "crash/crash_sweep.hh"
#include "nvm/pool_allocator.hh"

namespace upr::txnir
{

/**
 * Two transactions per call. The first pmallocs the round's cell and
 * initializes both words — every store is provably fresh, so the
 * analysis elides their pre-image logging. The second transaction
 * reopens and overwrites word 0 twice: the first store must log (the
 * cell outlived its allocating transaction), the repeat is dominated
 * by it and elides. A crash anywhere must recover to word0 in
 * {v, 3v} and word1 == v once the cell is durable — the exact
 * soundness claim behind both elision proofs.
 */
inline const char *kRoundSource = R"(
func @round(%v: i64) -> ptr {
entry:
  txbegin 0
  %cell = pmalloc 64
  store %v, %cell
  %tail = gep %cell, 8
  store %v, %tail
  txcommit
  txbegin 0
  %v2 = add %v, %v
  store %v2, %cell
  %v3 = add %v2, %v
  store %v3, %cell
  txcommit
  ret %cell
}
)";

/** Calls per workload run (one durable cell each). */
constexpr std::size_t kRounds = 5;

/** The value seed of round @p r; the cell commits as {3v, v}. */
inline std::uint64_t
roundValue(std::size_t r)
{
    return 500 + 100 * static_cast<std::uint64_t>(r);
}

/** @round compiled to its check plan, with or without elision proofs. */
struct Program
{
    ir::Module mod;
    CheckPlan plan;
    PersistencyResult persistency;
};

inline Program
compile(bool elide)
{
    Program p;
    p.mod = ir::parseModule(kRoundSource);
    const InferenceResult inf = inferPointerKinds(p.mod, true);
    FlowAnalysis flow(p.mod, inf);
    p.plan = insertChecks(p.mod, &inf);
    if (elide)
        p.persistency = analyzePersistency(p.mod, flow, &p.plan);
    return p;
}

/** The sweeps' fixed runtime config: deterministic, Hw version. */
inline Runtime::Config
config()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 1234;
    return cfg;
}

/** Which execution engine drives the rounds. */
enum class Tier
{
    Interp,
    Model,
    Native,
};

/**
 * Run kRounds calls of @round on a fresh runtime whose config pool
 * uses @p engine. With @p inj, the crash window opens before round 0
 * (pool formatting stays outside it). @p committedCalls ticks after
 * each completed call — a crash leaves it at the in-flight round's
 * index. @p finalImage, when non-null, receives the pool bytes after
 * the last round.
 * @return the cell pointer bits @round returned, one per round
 */
inline std::vector<std::uint64_t>
run(const Program &p, EngineKind engine, Tier tier,
    CrashInjector *inj = nullptr, std::size_t *committedCalls = nullptr,
    std::vector<std::uint8_t> *finalImage = nullptr)
{
    Runtime::Config cfg = config();
    cfg.execTier =
        tier == Tier::Native ? ExecTier::Native : ExecTier::Model;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("txnir", 1 << 20, engine);
    if (committedCalls)
        *committedCalls = 0;
    if (inj)
        inj->attach(rt.pools().pool(pool).backing());

    std::vector<std::uint64_t> cells;
    const auto record = [&](std::uint64_t bits) {
        cells.push_back(bits);
        if (committedCalls)
            ++*committedCalls;
    };
    if (tier == Tier::Interp) {
        Interpreter::Config icfg;
        icfg.pool = pool;
        Interpreter in(rt, p.mod, p.plan, icfg);
        for (std::size_t r = 0; r < kRounds; ++r)
            record(in.call("round", {roundValue(r)}));
    } else {
        const LoweredModule lm =
            lowerModule(p.mod, p.plan, rt.version());
        FastExecutor::Config xcfg;
        xcfg.pool = pool;
        xcfg.tier =
            tier == Tier::Native ? ExecTier::Native : ExecTier::Model;
        FastExecutor ex(rt, lm, xcfg);
        for (std::size_t r = 0; r < kRounds; ++r)
            record(ex.call("round", {roundValue(r)}));
    }
    if (finalImage)
        *finalImage = rt.pools().pool(pool).backing().raw().toVector();
    return cells;
}

/** Pool offsets of the returned cell pointers. */
inline std::vector<PoolOffset>
cellOffsets(const std::vector<std::uint64_t> &cells)
{
    std::vector<PoolOffset> off;
    for (std::uint64_t bits : cells)
        off.push_back(PtrRepr::offsetOf(bits));
    return off;
}

/**
 * Check a recovered (or recovered-and-repaired) image against the
 * round contract. @p cellOff comes from a crash-free reference run —
 * the workload is deterministic, so every sweep run allocates the
 * same cells. @p committedCalls is how many calls had returned when
 * the crash hit.
 *
 * The contract: the arena validates; exactly the committed rounds'
 * cells are live, plus at most the in-flight one (its first
 * transaction may have committed); every fully-committed cell reads
 * {3v, v}; the in-flight cell, if durable, reads word1 == v and
 * word0 in {v, 3v} — v is the pre-image the *retained* log entry
 * restores when the dominated elided repeat rolled back, 3v means the
 * second commit just made it. Any other word0 is elision-induced
 * corruption.
 *
 * @return "" if the image is a state a pure crash could leave, else
 *         a description of the violation
 */
inline std::string
checkImage(const std::vector<std::uint8_t> &image,
           const std::vector<PoolOffset> &cellOff,
           std::size_t committedCalls)
{
    try {
        Backing b;
        b.assign(image);
        Runtime rt(config());
        RuntimeScope scope(rt);
        const PoolId id = rt.pools().adoptImage(std::move(b), "v");

        const ArenaReport arena =
            rt.pools().allocator(id).inspectArena();
        if (!arena.tagsValid || !arena.freeListValid ||
            !arena.usedBytesMatch)
            return "arena invalid: " + arena.what;
        const std::size_t live = rt.pools().allocator(id).liveBlocks();
        if (live != committedCalls && live != committedCalls + 1) {
            return "live blocks " + std::to_string(live) +
                   " with " + std::to_string(committedCalls) +
                   " committed calls";
        }

        const Pool &pool = rt.pools().pool(id);
        const auto read64 = [&pool](Bytes off) {
            std::uint64_t v = 0;
            pool.backing().read(off, &v, sizeof(v));
            return v;
        };
        for (std::size_t r = 0; r < live && r < cellOff.size(); ++r) {
            const std::uint64_t v = roundValue(r);
            const std::uint64_t head = read64(cellOff[r]);
            const std::uint64_t tail = read64(cellOff[r] + 8);
            if (tail != v) {
                return "round " + std::to_string(r) + " word1 " +
                       std::to_string(tail) + " != " +
                       std::to_string(v);
            }
            const bool ok = r < committedCalls
                                ? head == 3 * v
                                : head == v || head == 3 * v;
            if (!ok) {
                return "round " + std::to_string(r) + " word0 " +
                       std::to_string(head) + " not a commit-atomic "
                       "state of v=" + std::to_string(v);
            }
        }
        return "";
    } catch (const std::exception &e) {
        return std::string("image validation threw: ") + e.what();
    }
}

} // namespace upr::txnir

#endif // UPR_TESTS_TXN_IR_WORKLOAD_HH
