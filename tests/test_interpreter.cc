/** @file The IR soundness suite — our substitute for running the
 * LLVM test-suite under the SW version (paper Sec VII-B): a corpus of
 * pointer-heavy IR programs, each executed under every version; all
 * outputs must equal the Volatile reference. */

#include <gtest/gtest.h>

#include "compiler/interpreter.hh"
#include "compiler/ir_parser.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

struct Program
{
    const char *name;
    const char *source;
    const char *entry;
    std::vector<std::uint64_t> args;
    std::uint64_t expect;
};

/** The corpus. Every program returns a checkable scalar. */
const Program kPrograms[] = {
    {"arith", R"(
func @main() -> i64 {
entry:
  %a = const 21
  %b = const 2
  %r = mul %a, %b
  ret %r
}
)",
     "main", {}, 42},

    {"loop-sum", R"(
func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  jmp head
head:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %acc = phi.i64 [entry, %zero], [body, %anext]
  %cont = lt %i, %n
  br %cont, body, exit
body:
  %one = const 1
  %inext = add %i, %one
  %anext = add %acc, %i
  jmp head
exit:
  ret %acc
}
)",
     "main", {100}, 4950},

    {"persistent-cell", R"(
func @main() -> i64 {
entry:
  %p = pmalloc 8
  %v = const 1234
  store %v, %p
  %r = load.i64 %p
  pfree %p
  ret %r
}
)",
     "main", {}, 1234},

    {"volatile-cell", R"(
func @main() -> i64 {
entry:
  %p = malloc 8
  %v = const 77
  store %v, %p
  %r = load.i64 %p
  free %p
  ret %r
}
)",
     "main", {}, 77},

    // Persistent linked list: build n nodes then sum the payloads by
    // chasing stored (relative) pointers. Node: {ptr next; i64 val}.
    {"plist-sum", R"(
func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  %null = inttoptr %zero
  jmp build
build:
  %i = phi.i64 [entry, %zero], [build2, %inext]
  %head = phi.ptr [entry, %null], [build2, %node]
  %cont = lt %i, %n
  br %cont, build2, walk
build2:
  %node = pmalloc 16
  %nextslot = gep %node, 0
  storep %head, %nextslot
  %valslot = gep %node, 8
  store %i, %valslot
  %one = const 1
  %inext = add %i, %one
  jmp build
walk:
  jmp whead
whead:
  %cur = phi.ptr [walk, %head], [wbody, %nxt]
  %acc = phi.i64 [walk, %zero], [wbody, %accn]
  %curi = ptrtoint %cur
  %done = eq %curi, %zero
  br %done, out, wbody
wbody:
  %vslot = gep %cur, 8
  %v = load.i64 %vslot
  %accn = add %acc, %v
  %nslot = gep %cur, 0
  %nxt = load.ptr %nslot
  jmp whead
out:
  ret %acc
}
)",
     "main", {50}, 1225},

    // Mixed media: a volatile cell pointing at a persistent cell.
    {"mixed-indirect", R"(
func @main() -> i64 {
entry:
  %pp = pmalloc 8
  %secret = const 99
  store %secret, %pp
  %vp = malloc 8
  storep %pp, %vp
  %loaded = load.ptr %vp
  %r = load.i64 %loaded
  ret %r
}
)",
     "main", {}, 99},

    // Pointer equality across representations (library function).
    {"fig9-append", R"(
func @append(%p: ptr, %n: ptr) {
entry:
  %same = eq %p, %n
  br %same, out, doit
doit:
  %slot = gep %p, 0
  storep %n, %slot
  jmp out
out:
  ret
}

func @main() -> i64 {
entry:
  %a = pmalloc 16
  %b = pmalloc 16
  call @append(%a, %b)
  call @append(%b, %b)
  %slot = gep %a, 0
  %lnk = load.ptr %slot
  %li = ptrtoint %lnk
  %bi = ptrtoint %b
  %ok = eq %li, %bi
  ret %ok
}
)",
     "main", {}, 1},

    // Recursion.
    {"fact", R"(
func @fact(%n: i64) -> i64 {
entry:
  %one = const 1
  %two = const 2
  %small = lt %n, %two
  br %small, base, rec
base:
  ret %one
rec:
  %nm1 = sub %n, %one
  %sub = call @fact(%nm1)
  %r = mul %n, %sub
  ret %r
}

func @main() -> i64 {
entry:
  %ten = const 10
  %r = call @fact(%ten)
  ret %r
}
)",
     "main", {}, 3628800},

    // Array walk: advance a pointer through a persistent array by
    // constant-stride gep in a loop (pointer-arithmetic soundness).
    {"parray", R"(
func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  %arr = pmalloc 800
  jmp fill
fill:
  %i = phi.i64 [entry, %zero], [fbody, %inext]
  %p = phi.ptr [entry, %arr], [fbody, %pnext]
  %c = lt %i, %n
  br %c, fbody, prep
fbody:
  store %i, %p
  %pnext = gep %p, 8
  %one = const 1
  %inext = add %i, %one
  jmp fill
prep:
  jmp sum
sum:
  %j = phi.i64 [prep, %zero], [sbody, %jnext]
  %q = phi.ptr [prep, %arr], [sbody, %qnext]
  %acc = phi.i64 [prep, %zero], [sbody, %accn]
  %c2 = lt %j, %n
  br %c2, sbody, out
sbody:
  %v = load.i64 %q
  %accn = add %acc, %v
  %qnext = gep %q, 8
  %one2 = const 1
  %jnext = add %j, %one2
  jmp sum
out:
  ret %acc
}
)",
     "main", {100}, 4950},

    // In-place reversal of a persistent list: storep-heavy.
    {"plist-reverse", R"(
func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  %null = inttoptr %zero
  jmp build
build:
  %i = phi.i64 [entry, %zero], [bbody, %inext]
  %head = phi.ptr [entry, %null], [bbody, %node]
  %c = lt %i, %n
  br %c, bbody, rev
bbody:
  %node = pmalloc 16
  %ns = gep %node, 0
  storep %head, %ns
  %vs = gep %node, 8
  store %i, %vs
  %one = const 1
  %inext = add %i, %one
  jmp build
rev:
  jmp rhead
rhead:
  %cur = phi.ptr [rev, %head], [rbody, %nxt]
  %prev = phi.ptr [rev, %null], [rbody, %cur]
  %ci = ptrtoint %cur
  %done = eq %ci, %zero
  br %done, walk, rbody
rbody:
  %ns2 = gep %cur, 0
  %nxt = load.ptr %ns2
  storep %prev, %ns2
  jmp rhead
walk:
  jmp whead
whead:
  %w = phi.ptr [walk, %prev], [wbody, %wn]
  %acc = phi.i64 [walk, %zero], [wbody, %accn]
  %idx = phi.i64 [walk, %zero], [wbody, %idxn]
  %wi = ptrtoint %w
  %wdone = eq %wi, %zero
  br %wdone, out, wbody
wbody:
  %vs2 = gep %w, 8
  %v = load.i64 %vs2
  ; after reversal, node order is 0,1,2,...: acc += v * (idx+1)
  %one2 = const 1
  %idxn = add %idx, %one2
  %t = mul %v, %idxn
  %accn = add %acc, %t
  %ns3 = gep %w, 0
  %wn = load.ptr %ns3
  jmp whead
out:
  ret %acc
}
)",
     "main", {10}, 330}, // sum over i=0..9 of i*(i+1) = 330

    // Pointer-to-pointer: a persistent cell holding a pointer to a
    // volatile cell holding a pointer to a persistent cell.
    {"ptr-to-ptr", R"(
func @main() -> i64 {
entry:
  %deep = pmalloc 8
  %mid = malloc 8
  %top = pmalloc 8
  %v = const 321
  store %v, %deep
  storep %deep, %mid
  storep %mid, %top
  %m = load.ptr %top
  %d = load.ptr %m
  %r = load.i64 %d
  ret %r
}
)",
     "main", {}, 321},

    // Library swap-through-pointers: classic C idiom.
    {"swap", R"(
func @swap(%a: ptr, %b: ptr) {
entry:
  %x = load.i64 %a
  %y = load.i64 %b
  store %y, %a
  store %x, %b
  ret
}

func @main() -> i64 {
entry:
  %p = pmalloc 8
  %q = malloc 8
  %v1 = const 100
  %v2 = const 23
  store %v1, %p
  store %v2, %q
  call @swap(%p, %q)
  %a = load.i64 %p
  %b = load.i64 %q
  %shift = const 1000
  %bs = mul %b, %shift
  %r = add %a, %bs
  ret %r
}
)",
     "main", {}, 100023},
};

} // namespace

class InterpreterSuite : public ::testing::TestWithParam<int>
{
};

namespace
{

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 11;
    return cfg;
}

std::uint64_t
runProgram(const Program &prog, Version version, bool with_inference,
           std::uint64_t *checks_out = nullptr,
           bool persist_heap = false)
{
    Module mod = parseModule(prog.source);
    InferenceResult inf;
    const InferenceResult *infp = nullptr;
    if (with_inference) {
        inf = inferPointerKinds(mod);
        infp = &inf;
    }
    const CheckPlan plan = insertChecks(mod, infp);

    Runtime::Config rcfg = makeConfig(version);
    rcfg.persistHeap = persist_heap;
    rcfg.persistHeapPoolSize = 32 << 20;
    Runtime rt(rcfg);
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("ir", 16 << 20);
    Interpreter interp(rt, mod, plan, icfg);
    const std::uint64_t result = interp.call(prog.entry, prog.args);
    if (checks_out)
        *checks_out = interp.dynamicCheckCount();
    return result;
}

} // namespace

TEST(InterpreterSoundness, AllProgramsAllVersionsMatchVolatile)
{
    for (const Program &prog : kPrograms) {
        SCOPED_TRACE(prog.name);
        const std::uint64_t want =
            runProgram(prog, Version::Volatile, true);
        EXPECT_EQ(want, prog.expect);
        for (Version v : {Version::Sw, Version::Hw}) {
            SCOPED_TRACE(versionName(v));
            EXPECT_EQ(runProgram(prog, v, true), prog.expect);
            EXPECT_EQ(runProgram(prog, v, false), prog.expect);
        }
    }
}

TEST(InterpreterSoundness, CorpusUnderLibvmmallocMode)
{
    // The paper's soundness campaign persisted the entire heap via
    // libvmmalloc and reran the test suite; same here: every malloc
    // becomes persistent, outputs must not change.
    for (const Program &prog : kPrograms) {
        SCOPED_TRACE(prog.name);
        for (Version v : {Version::Sw, Version::Hw}) {
            SCOPED_TRACE(versionName(v));
            EXPECT_EQ(runProgram(prog, v, true, nullptr, true),
                      prog.expect);
            EXPECT_EQ(runProgram(prog, v, false, nullptr, true),
                      prog.expect);
        }
    }
}

TEST(InterpreterChecks, InferenceReducesDynamicChecks)
{
    const Program &prog = kPrograms[4]; // plist-sum
    std::uint64_t with = 0, without = 0;
    runProgram(prog, Version::Sw, true, &with);
    runProgram(prog, Version::Sw, false, &without);
    EXPECT_LT(with, without);
    EXPECT_GT(with, 0u); // loaded pointers keep their checks
}

TEST(InterpreterChecks, FuelGuardsInfiniteLoops)
{
    Module mod = parseModule(R"(
func @spin() {
entry:
  jmp entry2
entry2:
  jmp entry2
}
)");
    const CheckPlan plan = insertChecks(mod, nullptr);
    Runtime rt(makeConfig(Version::Volatile));
    Interpreter::Config icfg;
    icfg.fuel = 1000;
    Interpreter interp(rt, mod, plan, icfg);
    EXPECT_THROW(interp.call("spin"), Fault);
}

TEST(InterpreterChecks, DepthGuardsRunawayRecursion)
{
    Module mod = parseModule(R"(
func @down(%n: i64) -> i64 {
entry:
  %r = call @down(%n)
  ret %r
}
)");
    const CheckPlan plan = insertChecks(mod, nullptr);
    Runtime rt(makeConfig(Version::Volatile));
    Interpreter interp(rt, mod, plan, {});
    EXPECT_THROW(interp.call("down", {1}), Fault);
}

TEST(InterpreterMemory, AllocasFreedOnReturn)
{
    Module mod = parseModule(R"(
func @scratch() -> i64 {
entry:
  %buf = alloca 64
  %v = const 5
  store %v, %buf
  %r = load.i64 %buf
  ret %r
}

func @main() -> i64 {
entry:
  %a = call @scratch()
  %b = call @scratch()
  %r = add %a, %b
  ret %r
}
)");
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf);
    Runtime rt(makeConfig(Version::Hw));
    Interpreter interp(rt, mod, plan, {});
    EXPECT_EQ(interp.call("main"), 10u);
    // Stack slots were returned to the heap.
    EXPECT_EQ(rt.heap().liveCount(), 0u);
}

TEST(InterpreterMemory, PersistentPointersStoredRelative)
{
    // The Sec VII-B criterion, via IR this time: after storep of a
    // persistent pointer into a persistent slot, the stored bits are
    // in relative format.
    Module mod = parseModule(R"(
func @main() -> i64 {
entry:
  %a = pmalloc 16
  %b = pmalloc 16
  %slot = gep %a, 0
  storep %b, %slot
  %pi = ptrtoint %a
  ret %pi
}
)");
    const auto inf = inferPointerKinds(mod);
    const CheckPlan plan = insertChecks(mod, &inf);
    Runtime rt(makeConfig(Version::Sw));
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("ir", 8 << 20);
    Interpreter interp(rt, mod, plan, icfg);
    const SimAddr a_va = interp.call("main");
    const PtrBits stored = rt.space().read<PtrBits>(a_va);
    EXPECT_EQ(PtrRepr::determineY(stored), PtrForm::Relative);
}
