/**
 * @file
 * Golden-counter test pinning the simulated model to known-good
 * values. The host-side lookup structures (flat address space, pool
 * slot table, pending-storeP hash table, SoA set-assoc arrays) are
 * pure performance work: they must not move a single simulated cycle
 * or counter. Every (workload, version) cell of the fig11 grid is
 * checked against values captured before those structures landed, at
 * two workload scales so both the tiny and the mid-size code paths
 * are covered.
 *
 * If a deliberate model change makes these fail, recapture with
 * bench_harness and update the tables -- but say so in the commit.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "bench_common.hh"

namespace upr::bench
{
namespace
{

struct GoldenRow
{
    const char *workload;
    const char *version;
    std::uint64_t cycles;
    std::uint64_t checksum;
    std::uint64_t dynamicChecks;
    std::uint64_t absToRel;
    std::uint64_t relToAbs;
    std::uint64_t memAccesses;
    std::uint64_t branchMisses;
    std::uint64_t reuseHits;
};

// Captured at UPR_BENCH_SCALE=100 (100 records / 1,000 ops; 100 LL
// nodes) from the pre-optimization model.
const GoldenRow kGoldenScale100[] = {
    {"LL", "Volatile", 1114ULL, 16347114079856916887ULL, 0ULL, 0ULL, 0ULL, 201ULL, 1ULL, 0ULL},
    {"LL", "SW", 5229ULL, 16347114079856916887ULL, 201ULL, 0ULL, 201ULL, 201ULL, 38ULL, 0ULL},
    {"LL", "HW", 1214ULL, 16347114079856916887ULL, 0ULL, 0ULL, 100ULL, 201ULL, 1ULL, 1177ULL},
    {"LL", "Explicit", 1717ULL, 16347114079856916887ULL, 0ULL, 0ULL, 201ULL, 201ULL, 1ULL, 0ULL},
    {"Hash", "Volatile", 57759ULL, 559397913414639610ULL, 0ULL, 0ULL, 0ULL, 6699ULL, 571ULL, 0ULL},
    {"Hash", "SW", 222282ULL, 559397913414639610ULL, 8729ULL, 0ULL, 6699ULL, 6699ULL, 3655ULL, 0ULL},
    {"Hash", "HW", 67431ULL, 559397913414639610ULL, 0ULL, 182ULL, 2831ULL, 6699ULL, 571ULL, 6229ULL},
    {"Hash", "Explicit", 84336ULL, 559397913414639610ULL, 0ULL, 0ULL, 6699ULL, 6699ULL, 571ULL, 0ULL},
    {"RB", "Volatile", 145710ULL, 559397913414639610ULL, 0ULL, 0ULL, 0ULL, 16768ULL, 3475ULL, 0ULL},
    {"RB", "SW", 505028ULL, 559397913414639610ULL, 17418ULL, 0ULL, 16912ULL, 16768ULL, 7254ULL, 0ULL},
    {"RB", "HW", 160334ULL, 559397913414639610ULL, 0ULL, 0ULL, 8155ULL, 16768ULL, 3472ULL, 10289ULL},
    {"RB", "Explicit", 202254ULL, 559397913414639610ULL, 0ULL, 0ULL, 16768ULL, 16768ULL, 3475ULL, 0ULL},
    {"Splay", "Volatile", 503010ULL, 559397913414639610ULL, 0ULL, 0ULL, 0ULL, 73523ULL, 8659ULL, 0ULL},
    {"Splay", "SW", 2693783ULL, 559397913414639610ULL, 150559ULL, 0ULL, 90625ULL, 73523ULL, 44016ULL, 0ULL},
    {"Splay", "HW", 605222ULL, 559397913414639610ULL, 0ULL, 0ULL, 66957ULL, 73523ULL, 8540ULL, 27303ULL},
    {"Splay", "Explicit", 729819ULL, 559397913414639610ULL, 0ULL, 0ULL, 73523ULL, 73523ULL, 8659ULL, 0ULL},
    {"AVL", "Volatile", 153761ULL, 559397913414639610ULL, 0ULL, 0ULL, 0ULL, 17941ULL, 3636ULL, 0ULL},
    {"AVL", "SW", 542060ULL, 559397913414639610ULL, 18561ULL, 0ULL, 18007ULL, 17941ULL, 8419ULL, 0ULL},
    {"AVL", "HW", 169233ULL, 559397913414639610ULL, 0ULL, 0ULL, 8955ULL, 17941ULL, 3636ULL, 11106ULL},
    {"AVL", "Explicit", 213824ULL, 559397913414639610ULL, 0ULL, 0ULL, 17941ULL, 17941ULL, 3636ULL, 0ULL},
    {"SG", "Volatile", 145801ULL, 559397913414639610ULL, 0ULL, 0ULL, 0ULL, 17120ULL, 3150ULL, 0ULL},
    {"SG", "SW", 511745ULL, 559397913414639610ULL, 17328ULL, 0ULL, 17120ULL, 17120ULL, 7375ULL, 0ULL},
    {"SG", "HW", 160072ULL, 559397913414639610ULL, 0ULL, 0ULL, 7927ULL, 17120ULL, 3150ULL, 10544ULL},
    {"SG", "Explicit", 203401ULL, 559397913414639610ULL, 0ULL, 0ULL, 17120ULL, 17120ULL, 3150ULL, 0ULL},
};

// Captured at UPR_BENCH_SCALE=20 (500 records / 5,000 ops; 500 LL
// nodes): large enough to exercise set-assoc eviction, POLB/VALB
// walks, and the pending-storeP table's collision handling.
const GoldenRow kGoldenScale20[] = {
    {"LL", "Volatile", 5514ULL, 10596301988836065412ULL, 0ULL, 0ULL, 0ULL, 1001ULL, 1ULL, 0ULL},
    {"LL", "SW", 25237ULL, 10596301988836065412ULL, 1001ULL, 0ULL, 1001ULL, 1001ULL, 89ULL, 0ULL},
    {"LL", "HW", 6014ULL, 10596301988836065412ULL, 0ULL, 0ULL, 500ULL, 1001ULL, 1ULL, 5877ULL},
    {"LL", "Explicit", 8517ULL, 10596301988836065412ULL, 0ULL, 0ULL, 1001ULL, 1001ULL, 1ULL, 0ULL},
    {"Hash", "Volatile", 273163ULL, 6708845210674423701ULL, 0ULL, 0ULL, 0ULL, 31880ULL, 1861ULL, 0ULL},
    {"Hash", "SW", 1045612ULL, 6708845210674423701ULL, 41219ULL, 0ULL, 31880ULL, 31880ULL, 15390ULL, 0ULL},
    {"Hash", "HW", 318632ULL, 6708845210674423701ULL, 0ULL, 809ULL, 13458ULL, 31880ULL, 1861ULL, 29505ULL},
    {"Hash", "Explicit", 399283ULL, 6708845210674423701ULL, 0ULL, 0ULL, 31880ULL, 31880ULL, 1861ULL, 0ULL},
    {"RB", "Volatile", 943553ULL, 6708845210674423701ULL, 0ULL, 0ULL, 0ULL, 106522ULL, 25552ULL, 0ULL},
    {"RB", "SW", 3203959ULL, 6708845210674423701ULL, 109642ULL, 0ULL, 107224ULL, 106522ULL, 48744ULL, 0ULL},
    {"RB", "HW", 1026855ULL, 6708845210674423701ULL, 0ULL, 0ULL, 51837ULL, 106522ULL, 25539ULL, 64813ULL},
    {"RB", "Explicit", 1293479ULL, 6708845210674423701ULL, 0ULL, 0ULL, 106522ULL, 106522ULL, 25552ULL, 0ULL},
    {"Splay", "Volatile", 3425232ULL, 6708845210674423701ULL, 0ULL, 0ULL, 0ULL, 512446ULL, 53017ULL, 0ULL},
    {"Splay", "SW", 18860630ULL, 6708845210674423701ULL, 1063194ULL, 0ULL, 638918ULL, 512446ULL, 302113ULL, 0ULL},
    {"Splay", "HW", 4140687ULL, 6708845210674423701ULL, 0ULL, 0ULL, 483501ULL, 512446ULL, 51699ULL, 180024ULL},
    {"Splay", "Explicit", 4992930ULL, 6708845210674423701ULL, 0ULL, 0ULL, 512446ULL, 512446ULL, 53017ULL, 0ULL},
    {"AVL", "Volatile", 977692ULL, 6708845210674423701ULL, 0ULL, 0ULL, 0ULL, 112319ULL, 25575ULL, 0ULL},
    {"AVL", "SW", 3407173ULL, 6708845210674423701ULL, 115603ULL, 0ULL, 112665ULL, 112319ULL, 56784ULL, 0ULL},
    {"AVL", "HW", 1065191ULL, 6708845210674423701ULL, 0ULL, 0ULL, 55670ULL, 112319ULL, 25575ULL, 69573ULL},
    {"AVL", "Explicit", 1345009ULL, 6708845210674423701ULL, 0ULL, 0ULL, 112319ULL, 112319ULL, 25575ULL, 0ULL},
    {"SG", "Volatile", 997353ULL, 6708845210674423701ULL, 0ULL, 0ULL, 0ULL, 114729ULL, 25058ULL, 0ULL},
    {"SG", "SW", 3429272ULL, 6708845210674423701ULL, 115741ULL, 0ULL, 114729ULL, 114729ULL, 52392ULL, 0ULL},
    {"SG", "HW", 1082451ULL, 6708845210674423701ULL, 0ULL, 0ULL, 54232ULL, 114729ULL, 25058ULL, 68593ULL},
    {"SG", "Explicit", 1371900ULL, 6708845210674423701ULL, 0ULL, 0ULL, 114729ULL, 114729ULL, 25058ULL, 0ULL},
};

Workload
workloadByName(const std::string &name)
{
    for (Workload w : kAllWorkloads)
        if (name == workloadName(w))
            return w;
    ADD_FAILURE() << "unknown workload " << name;
    return Workload::LL;
}

Version
versionByName(const std::string &name)
{
    const Version all[] = {Version::Volatile, Version::Sw, Version::Hw,
                           Version::Explicit};
    for (Version v : all)
        if (name == versionName(v))
            return v;
    ADD_FAILURE() << "unknown version " << name;
    return Version::Volatile;
}

/** Pin the scale for one test; benchScale() reads the env per call. */
struct ScaleGuard
{
    explicit ScaleGuard(const char *scale)
    {
        ::setenv("UPR_BENCH_SCALE", scale, /*overwrite=*/1);
    }

    ~ScaleGuard() { ::unsetenv("UPR_BENCH_SCALE"); }
};

void
checkGrid(const GoldenRow *rows, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const GoldenRow &g = rows[i];
        SCOPED_TRACE(std::string(g.workload) + " x " + g.version);
        const RunStats st =
            run(workloadByName(g.workload), versionByName(g.version));
        EXPECT_EQ(st.cycles, g.cycles);
        EXPECT_EQ(st.checksum, g.checksum);
        EXPECT_EQ(st.dynamicChecks, g.dynamicChecks);
        EXPECT_EQ(st.absToRel, g.absToRel);
        EXPECT_EQ(st.relToAbs, g.relToAbs);
        EXPECT_EQ(st.memAccesses, g.memAccesses);
        EXPECT_EQ(st.branchMisses, g.branchMisses);
        EXPECT_EQ(st.reuseHits, g.reuseHits);
    }
}

TEST(ModelInvariance, Fig11GridScale100)
{
    ScaleGuard scale("100");
    checkGrid(kGoldenScale100, std::size(kGoldenScale100));
}

TEST(ModelInvariance, Fig11GridScale20)
{
    ScaleGuard scale("20");
    checkGrid(kGoldenScale20, std::size(kGoldenScale20));
}

// Determinism across repeats within one process: warm host-side MRU
// caches from a previous run must not leak into a fresh Runtime.
TEST(ModelInvariance, RepeatRunsAreIdentical)
{
    ScaleGuard scale("100");
    const RunStats a = run(Workload::RB, Version::Hw);
    const RunStats b = run(Workload::RB, Version::Hw);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.branchMisses, b.branchMisses);
    EXPECT_EQ(a.reuseHits, b.reuseHits);
}

} // namespace
} // namespace upr::bench
