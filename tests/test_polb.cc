/** @file Unit tests for the POLB (pool-ID lookaside buffer) model. */

#include <gtest/gtest.h>

#include "arch/polb.hh"

using namespace upr;

class PolbTest : public ::testing::Test
{
  protected:
    PolbTest() : mgr(space, Placement::Sequential), polb(params, mgr)
    {
        pool = mgr.createPool("p", 1 << 20);
    }

    MachineParams params;
    AddressSpace space;
    PoolManager mgr;
    Polb polb;
    PoolId pool;
};

TEST_F(PolbTest, MissWalksThenHits)
{
    const XlatResult miss = polb.ra2va(pool, 0x100);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.latency, params.polbHitLatency + params.powLatency);
    EXPECT_EQ(miss.value, mgr.baseOf(pool) + 0x100);

    const XlatResult hit = polb.ra2va(pool, 0x200);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latency, params.polbHitLatency);
    EXPECT_EQ(hit.value, mgr.baseOf(pool) + 0x200);
}

TEST_F(PolbTest, DetachedPoolFaultsOnWalk)
{
    polb.ra2va(pool, 0); // warm the entry
    mgr.detach(pool);
    // Epoch sync invalidates the entry, and the walker faults.
    try {
        polb.ra2va(pool, 0);
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::PoolDetached);
    }
}

TEST_F(PolbTest, ReattachTranslatesToNewBase)
{
    polb.ra2va(pool, 0);
    const SimAddr base1 = mgr.baseOf(pool);
    mgr.detach(pool);
    mgr.openPool("p");
    const SimAddr base2 = mgr.baseOf(pool);
    ASSERT_NE(base1, base2);
    const XlatResult r = polb.ra2va(pool, 0x40);
    EXPECT_EQ(r.value, base2 + 0x40);
    EXPECT_FALSE(r.hit); // stale entry was shot down
}

TEST_F(PolbTest, HitPathBoundsChecks)
{
    polb.ra2va(pool, 0); // warm
    try {
        polb.ra2va(pool, 1 << 20); // offset == pool size
        FAIL();
    } catch (const Fault &f) {
        EXPECT_EQ(f.kind(), FaultKind::OffsetOutOfPool);
    }
}

TEST_F(PolbTest, UnknownPoolFaults)
{
    EXPECT_THROW(polb.ra2va(999, 0), Fault);
}

TEST_F(PolbTest, CapacityEviction)
{
    // One more pool than the POLB has entries: round-robin touching
    // all of them must keep missing somewhere.
    std::vector<PoolId> pools{pool};
    for (std::uint32_t i = 0; i < params.polbEntries; ++i) {
        pools.push_back(
            mgr.createPool("p" + std::to_string(i), 1 << 17));
    }
    // First pass: all walks (also resyncs after the attaches).
    for (PoolId id : pools)
        polb.ra2va(id, 0);
    const std::uint64_t walks_before = polb.walkCount();
    // Second pass in the same order: with entries+1 pools and LRU,
    // every access misses again (classic LRU thrash).
    for (PoolId id : pools)
        polb.ra2va(id, 0);
    EXPECT_EQ(polb.walkCount() - walks_before, pools.size());
}

TEST_F(PolbTest, StatsAccumulate)
{
    polb.ra2va(pool, 0);
    polb.ra2va(pool, 8);
    polb.ra2va(pool, 16);
    EXPECT_EQ(polb.accesses(), 3u);
    EXPECT_EQ(polb.stats().lookup("hits"), 2u);
    EXPECT_EQ(polb.walkCount(), 1u);
}
