/** @file Unit tests for Pool creation, headers, and image adoption. */

#include <gtest/gtest.h>

#include "nvm/pool.hh"

using namespace upr;

TEST(Pool, FreshPoolHasValidHeader)
{
    Pool p(7, "test", 1 << 20);
    const PoolHeader h = p.header();
    EXPECT_EQ(h.magic, PoolHeader::kMagic);
    EXPECT_EQ(h.version, PoolHeader::kVersion);
    EXPECT_EQ(h.poolId, 7u);
    EXPECT_EQ(h.size, 1u << 20);
    EXPECT_EQ(h.rootOff, 0u);
    EXPECT_GE(h.arenaStart, Pool::kHeaderSize + h.logSize);
    EXPECT_EQ(p.id(), 7u);
    EXPECT_EQ(p.name(), "test");
    EXPECT_EQ(p.size(), 1u << 20);
}

TEST(Pool, RootOffsetPersistsInBacking)
{
    Pool p(1, "root", 1 << 20);
    p.setRootOff(0x1234);
    EXPECT_EQ(p.rootOff(), 0x1234u);
    // The root offset must live in the backing (survives image copy).
    Pool copy("copy", Backing(p.backing()));
    EXPECT_EQ(copy.rootOff(), 0x1234u);
}

TEST(Pool, IdZeroRejected)
{
    EXPECT_DEATH(Pool(0, "bad", 1 << 20), "reserved");
}

TEST(Pool, TooSmallRejected)
{
    EXPECT_THROW(Pool(1, "tiny", 1024), Fault);
}

TEST(Pool, OversizedRejected)
{
    EXPECT_THROW(Pool(1, "huge", (1ULL << 32) + 1), Fault);
}

TEST(Pool, AdoptImageValidatesMagic)
{
    Backing junk(1 << 20);
    EXPECT_THROW(Pool("junk", std::move(junk)), Fault);
}

TEST(Pool, AdoptImageValidatesSizeField)
{
    Pool p(3, "orig", 1 << 20);
    // Tamper: shrink the size field so it disagrees with the backing.
    PoolHeader h = p.header();
    h.size = 4096;
    p.setHeader(h);
    Backing image(p.backing());
    EXPECT_THROW(Pool("bad", std::move(image)), Fault);
}

namespace
{

/** The FaultKind an adoption of @p image raises (asserts it throws). */
FaultKind
adoptFaultKind(Backing image)
{
    try {
        Pool p("tampered", std::move(image));
    } catch (const Fault &f) {
        return f.kind();
    }
    ADD_FAILURE() << "adoption of a tampered image did not throw";
    return FaultKind::BadUsage;
}

/** Copy @p p's image with one header field mutated. */
template <typename Mutate>
Backing
tamper(Pool &p, Mutate &&mutate)
{
    PoolHeader h = p.header();
    mutate(h);
    Backing image(p.backing());
    image.write(0, &h, sizeof(h));
    return image;
}

} // namespace

TEST(Pool, AdoptImageReportsCorruptPoolKind)
{
    Backing junk(1 << 20);
    EXPECT_EQ(adoptFaultKind(std::move(junk)), FaultKind::CorruptPool);
}

TEST(Pool, AdoptImageValidatesVersion)
{
    Pool p(3, "orig", 1 << 20);
    const auto kind = adoptFaultKind(tamper(p, [](PoolHeader &h) {
        h.version = PoolHeader::kVersion + 1;
    }));
    EXPECT_EQ(kind, FaultKind::CorruptPool);
}

TEST(Pool, AdoptImageValidatesLogGeometry)
{
    Pool p(3, "orig", 1 << 20);
    // Log area overruns the arena start: every downstream module
    // would compute wild offsets from this.
    const auto kind = adoptFaultKind(tamper(p, [](PoolHeader &h) {
        h.logSize = h.size;
    }));
    EXPECT_EQ(kind, FaultKind::CorruptPool);
}

TEST(Pool, AdoptImageValidatesRootOffset)
{
    Pool p(3, "orig", 1 << 20);
    const auto kind = adoptFaultKind(tamper(p, [](PoolHeader &h) {
        h.rootOff = h.size + 1;
    }));
    EXPECT_EQ(kind, FaultKind::CorruptPool);
}

TEST(Pool, AdoptImageKeepsIdentity)
{
    Pool p(9, "orig", 1 << 20);
    p.setRootOff(77);
    Pool q("reopened", Backing(p.backing()));
    EXPECT_EQ(q.id(), 9u);
    EXPECT_EQ(q.rootOff(), 77u);
    EXPECT_EQ(q.name(), "reopened");
}
