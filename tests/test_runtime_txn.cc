/** @file Integration tests for runtime-level persistent transactions
 * (Sec VI): an application transaction covers stores made by
 * unmodified "legacy library" code (our containers), with commit,
 * abort, and crash-recovery semantics. */

#include <gtest/gtest.h>

#include <fstream>

#include "containers/rb_tree.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

using Tree = RbTree<std::uint64_t, std::uint64_t>;

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 23;
    return cfg;
}

} // namespace

class RuntimeTxn : public ::testing::TestWithParam<Version>
{
  protected:
    RuntimeTxn()
        : rt(makeConfig(GetParam())), scope(rt),
          pool(rt.createPool("txn", 32 << 20)),
          env(MemEnv::persistentEnv(rt, pool))
    {}

    Runtime rt;
    RuntimeScope scope;
    PoolId pool;
    MemEnv env;
};

TEST_P(RuntimeTxn, CommitKeepsLibraryWrites)
{
    Tree tree(env);
    tree.insert(1, 10);

    rt.beginTxn(pool);
    tree.insert(2, 20); // library writes inside the app's txn
    tree.insert(3, 30);
    rt.commitTxn();

    EXPECT_EQ(tree.size(), 3u);
    EXPECT_EQ(tree.find(2).value(), 20u);
    tree.validate();
}

TEST_P(RuntimeTxn, AbortRollsLibraryWritesBack)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP() << "transactions are no-ops without NVM";

    Tree tree(env);
    for (std::uint64_t i = 0; i < 50; ++i)
        tree.insert(i, i);

    rt.beginTxn(pool);
    for (std::uint64_t i = 50; i < 80; ++i)
        tree.insert(i, i);
    tree.erase(10);
    tree.erase(20);
    EXPECT_EQ(tree.size(), 78u);
    rt.abortTxn();

    // The tree is exactly as before the transaction — including the
    // allocator metadata for the nodes that were allocated inside it.
    EXPECT_EQ(tree.size(), 50u);
    tree.validate();
    for (std::uint64_t i = 0; i < 50; ++i)
        ASSERT_EQ(tree.find(i).value(), i);
    for (std::uint64_t i = 50; i < 80; ++i)
        ASSERT_FALSE(tree.contains(i));

    // The pool is fully usable afterwards.
    tree.insert(99, 999);
    EXPECT_EQ(tree.find(99).value(), 999u);
    tree.validate();
}

TEST_P(RuntimeTxn, CrashRecoveryFromImage)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();

    Tree tree(env);
    for (std::uint64_t i = 0; i < 20; ++i)
        tree.insert(i, i * 2);
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(tree.header().bits()));

    rt.beginTxn(pool);
    for (std::uint64_t i = 20; i < 40; ++i)
        tree.insert(i, i * 2);

    // "Crash": snapshot the pool image mid-transaction and recover it
    // in a fresh process.
    Pool crashed("crashed", Backing(rt.pools().pool(pool).backing()));
    EXPECT_TRUE(Txn::recover(crashed));
    rt.abortTxn(); // tidy up the original

    // Attach the recovered image in a new runtime and re-check.
    Runtime rt2(makeConfig(GetParam()));
    RuntimeScope scope2(rt2);
    const std::string path = ::testing::TempDir() + "/crash.img";
    {
        // Round-trip the recovered image through a file, as a new
        // process would receive it.
        std::ofstream os(path, std::ios::binary);
        const auto &raw = crashed.backing().raw();
        os.write(reinterpret_cast<const char *>(raw.data()),
                 static_cast<std::streamsize>(raw.size()));
    }
    const PoolId p2 = rt2.pools().loadImage(path, "recovered");
    MemEnv env2 = MemEnv::persistentEnv(rt2, p2);
    Tree reopened(env2, Ptr<Tree::Header>::fromBits(
                            PtrRepr::makeRelative(
                                p2, rt2.pools().pool(p2).rootOff())));
    reopened.validate();
    EXPECT_EQ(reopened.size(), 20u); // pre-txn state exactly
    for (std::uint64_t i = 0; i < 20; ++i)
        ASSERT_EQ(reopened.find(i).value(), i * 2);
    std::remove(path.c_str());
}

TEST_P(RuntimeTxn, NestedBeginRejected)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    rt.beginTxn(pool);
    EXPECT_THROW(rt.beginTxn(pool), Fault);
    rt.commitTxn();
}

TEST_P(RuntimeTxn, VolatileWritesNotLogged)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();

    rt.beginTxn(pool);
    // A volatile (DRAM) store inside the transaction must not be
    // logged or rolled back.
    const SimAddr v = rt.mallocBytes(8);
    rt.storeData<std::uint64_t>(v, 0xAA);
    rt.abortTxn();
    EXPECT_EQ(rt.loadData<std::uint64_t>(v), 0xAAu);
}

TEST_P(RuntimeTxn, BeginOnDetachedPoolFaults)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP();
    rt.pools().detach(pool);
    EXPECT_THROW(rt.beginTxn(pool), Fault);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, RuntimeTxn,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });
