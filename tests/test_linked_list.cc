/** @file Tests for the LL container across all four versions,
 * including persistence across pool relocation. */

#include <gtest/gtest.h>

#include <deque>

#include "common/random.hh"
#include "containers/linked_list.hh"

using namespace upr;

namespace
{

/** The paper's LL payload: a 16-byte value. */
struct Value16
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
};

Runtime::Config
makeConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 5;
    return cfg;
}

} // namespace

class LinkedListVersions : public ::testing::TestWithParam<Version>
{
  protected:
    LinkedListVersions()
        : rt(makeConfig(GetParam())), scope(rt),
          pool(rt.createPool("p", 8 << 20)),
          env(MemEnv::persistentEnv(rt, pool))
    {}

    Runtime rt;
    RuntimeScope scope;
    PoolId pool;
    MemEnv env;
};

TEST_P(LinkedListVersions, PushBackAndIterate)
{
    LinkedList<Value16> list(env);
    for (std::uint64_t i = 0; i < 100; ++i)
        list.pushBack({i, i * 2});
    EXPECT_EQ(list.size(), 100u);
    list.validate();

    std::uint64_t sum = 0, expect = 0, i = 0;
    list.forEach([&](const Value16 &v) {
        sum += v.lo + v.hi;
        expect += i + i * 2;
        ++i;
    });
    EXPECT_EQ(sum, expect);
}

TEST_P(LinkedListVersions, PushFrontOrder)
{
    LinkedList<Value16> list(env);
    for (std::uint64_t i = 0; i < 10; ++i)
        list.pushFront({i, 0});
    std::uint64_t want = 9;
    list.forEach([&](const Value16 &v) { EXPECT_EQ(v.lo, want--); });
    list.validate();
}

TEST_P(LinkedListVersions, EraseMiddleFrontBack)
{
    LinkedList<Value16> list(env);
    auto a = list.pushBack({1, 0});
    auto b = list.pushBack({2, 0});
    auto c = list.pushBack({3, 0});
    list.erase(b);
    list.validate();
    EXPECT_EQ(list.size(), 2u);
    list.erase(a);
    list.validate();
    EXPECT_EQ(list.front().field(&LinkedList<Value16>::Node::value).lo,
              3u);
    list.erase(c);
    list.validate();
    EXPECT_TRUE(list.empty());
    EXPECT_TRUE(list.front().isNull());
    EXPECT_TRUE(list.back().isNull());
}

TEST_P(LinkedListVersions, InsertAfter)
{
    LinkedList<Value16> list(env);
    auto a = list.pushBack({1, 0});
    list.pushBack({3, 0});
    list.insertAfter(a, {2, 0});
    std::uint64_t want = 1;
    list.forEach([&](const Value16 &v) { EXPECT_EQ(v.lo, want++); });
    list.validate();

    // Insert after the tail updates the tail.
    auto tail = list.back();
    list.insertAfter(tail, {4, 0});
    EXPECT_EQ(list.back().field(&LinkedList<Value16>::Node::value).lo,
              4u);
    list.validate();
}

TEST_P(LinkedListVersions, ClearFreesEverything)
{
    LinkedList<Value16> list(env);
    for (int i = 0; i < 50; ++i)
        list.pushBack({std::uint64_t(i), 0});
    list.clear();
    EXPECT_TRUE(list.empty());
    list.validate();
    // Reusable after clear.
    list.pushBack({7, 7});
    EXPECT_EQ(list.size(), 1u);
    list.validate();
}

TEST_P(LinkedListVersions, RandomizedAgainstDequeOracle)
{
    LinkedList<Value16> list(env);
    std::deque<std::uint64_t> oracle;
    Rng rng(123);

    for (int step = 0; step < 1500; ++step) {
        const std::uint64_t r = rng.nextBounded(100);
        if (r < 45 || oracle.empty()) {
            const std::uint64_t v = rng.next();
            if (r % 2) {
                list.pushBack({v, 0});
                oracle.push_back(v);
            } else {
                list.pushFront({v, 0});
                oracle.push_front(v);
            }
        } else if (r < 75) {
            list.erase(list.front());
            oracle.pop_front();
        } else {
            list.erase(list.back());
            oracle.pop_back();
        }
    }
    ASSERT_EQ(list.size(), oracle.size());
    std::size_t i = 0;
    list.forEach([&](const Value16 &v) {
        ASSERT_EQ(v.lo, oracle[i]) << "mismatch at " << i;
        ++i;
    });
    list.validate();
}

TEST_P(LinkedListVersions, SurvivesPoolRelocation)
{
    if (GetParam() == Version::Volatile)
        GTEST_SKIP() << "no pools under Volatile";

    LinkedList<Value16> list(env);
    for (std::uint64_t i = 0; i < 64; ++i)
        list.pushBack({i, ~i});
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(list.header().bits()));

    rt.pools().detach(pool);
    rt.pools().openPool("p");

    // Re-attach via the pool root, as a fresh process would.
    using Hdr = LinkedList<Value16>::Header;
    Ptr<Hdr> hdr = Ptr<Hdr>::fromBits(PtrRepr::makeRelative(
        pool, rt.pools().pool(pool).rootOff()));
    LinkedList<Value16> reopened(env, hdr);
    EXPECT_EQ(reopened.size(), 64u);
    reopened.validate();
    std::uint64_t i = 0;
    reopened.forEach([&](const Value16 &v) {
        EXPECT_EQ(v.lo, i);
        EXPECT_EQ(v.hi, ~i);
        ++i;
    });
}

TEST_P(LinkedListVersions, VolatileEnvironmentWorksIdentically)
{
    // The same container code in a heap environment — the user
    // transparency property in one test.
    MemEnv venv = MemEnv::volatileEnv(rt);
    LinkedList<Value16> list(venv);
    for (std::uint64_t i = 0; i < 20; ++i)
        list.pushBack({i, 0});
    EXPECT_EQ(list.size(), 20u);
    list.validate();
    list.clear();
}

INSTANTIATE_TEST_SUITE_P(
    AllVersions, LinkedListVersions,
    ::testing::Values(Version::Volatile, Version::Sw, Version::Hw,
                      Version::Explicit),
    [](const ::testing::TestParamInfo<Version> &info) {
        return versionName(info.param);
    });
