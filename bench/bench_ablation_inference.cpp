/**
 * @file
 * Ablation: the Sec V-B compiler inference ON vs OFF.
 *
 * The paper reports inference still leaves a substantial share of
 * dynamic checks (~42% in their benchmarks) because loaded pointers
 * and exported-library parameters defeat static reasoning. This
 * bench runs a library-shaped IR workload both ways and reports the
 * static sites eliminated, dynamic checks executed, and cycles.
 */

#include <cinttypes>
#include <cstdio>

#include "compiler/interpreter.hh"
#include "compiler/ir_parser.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

/** A library (unknown params) + an application driving it. */
const char *kSource = R"(
; --- the "legacy library": a stack of nodes {ptr next; i64 v} ---
func @push(%head: ptr, %node: ptr) {
entry:
  %slot = gep %node, 0
  %old = load.ptr %head
  storep %old, %slot
  storep %node, %head
  ret
}

func @sum(%head: ptr) -> i64 {
entry:
  %zero = const 0
  %cur0 = load.ptr %head
  jmp loop
loop:
  %cur = phi.ptr [entry, %cur0], [body, %nxt]
  %acc = phi.i64 [entry, %zero], [body, %accn]
  %ci = ptrtoint %cur
  %done = eq %ci, %zero
  br %done, out, body
body:
  %vslot = gep %cur, 8
  %v = load.i64 %vslot
  %accn = add %acc, %v
  %nslot = gep %cur, 0
  %nxt = load.ptr %nslot
  jmp loop
out:
  ret %acc
}

; --- the application: persistent head cell and nodes ---
func @main(%n: i64) -> i64 {
entry:
  %zero = const 0
  %head = pmalloc 8
  %null = inttoptr %zero
  storep %null, %head
  jmp fill
fill:
  %i = phi.i64 [entry, %zero], [fbody, %inext]
  %c = lt %i, %n
  br %c, fbody, done
fbody:
  %node = pmalloc 16
  %vslot = gep %node, 8
  %one = const 1
  %inext = add %i, %one
  store %inext, %vslot
  call @push(%head, %node)
  jmp fill
done:
  %total = call @sum(%head)
  ret %total
}
)";

struct Outcome
{
    std::uint64_t result;
    std::uint64_t dynChecks;
    Cycles cycles;
    std::uint64_t staticTotal;
    std::uint64_t staticRemaining;
};

Outcome
runOnce(bool with_inference, bool whole_program, bool refine = false)
{
    Module mod = parseModule(kSource);
    InferenceResult inf;
    const InferenceResult *infp = nullptr;
    if (with_inference) {
        inf = inferPointerKinds(mod, !whole_program);
        infp = &inf;
    }
    const CheckPlan plan = insertChecks(mod, infp, refine);

    Runtime::Config cfg;
    cfg.version = Version::Sw;
    Runtime rt(cfg);
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("abl", 64 << 20);
    Interpreter interp(rt, mod, plan, icfg);
    const std::uint64_t r = interp.call("main", {2000});
    return {r, interp.dynamicCheckCount(), rt.machine().now(),
            plan.totalSites, plan.remainingSites};
}

} // namespace

int
main()
{
    std::printf("Ablation: compiler pointer-kind inference "
                "(SW version, 2000-node stack workload)\n\n");
    std::printf("%-28s %10s %12s %14s %12s\n", "configuration",
                "sites", "dyn sites", "dyn executed", "cycles");

    const Outcome off = runOnce(false, false);
    const Outcome lib = runOnce(true, false);
    const Outcome refined = runOnce(true, false, true);
    const Outcome whole = runOnce(true, true);

    auto row = [](const char *name, const Outcome &o) {
        std::printf("%-28s %10" PRIu64 " %12" PRIu64 " %14" PRIu64
                    " %12" PRIu64 "\n",
                    name, o.staticTotal, o.staticRemaining,
                    o.dynChecks, o.cycles);
    };
    row("no inference", off);
    row("inference (library mode)", lib);
    row("  + block refinement", refined);
    row("inference (whole program)", whole);

    if (off.result != lib.result || lib.result != whole.result ||
        refined.result != lib.result) {
        std::fprintf(stderr, "OUTPUT MISMATCH\n");
        return 1;
    }

    std::printf("\nstatic sites kept dynamic: %.0f%% (library mode; "
                "paper reports ~42%% of checks remain)\n",
                100.0 * static_cast<double>(lib.staticRemaining) /
                    static_cast<double>(lib.staticTotal));
    std::printf("cycles saved by inference: %.1f%% (library), "
                "%.1f%% (whole program)\n",
                100.0 * (1.0 - static_cast<double>(lib.cycles) /
                                   static_cast<double>(off.cycles)),
                100.0 * (1.0 - static_cast<double>(whole.cycles) /
                                   static_cast<double>(off.cycles)));
    return 0;
}
