/**
 * @file
 * Extension sensitivity studies the paper's setup implies but does
 * not plot:
 *  (a) NVM/DRAM latency ratio sweep — how the HW version's overhead
 *      over Volatile scales as NVM gets slower (the paper fixes
 *      2x = 240/120 cycles);
 *  (b) POLB latency sweep — unlike the VALB (Fig 14), the POLB sits
 *      on the load critical path, so its latency should matter much
 *      more. This contrast is the architectural argument for keeping
 *      the POLB small and fast.
 */

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

int
main()
{
    printConfigBanner();

    // (a) NVM latency sweep, RB workload.
    std::printf("\n(a) NVM latency sweep (RB): HW time normalized to "
                "Volatile\n");
    std::printf("%-14s %10s %10s %10s %10s\n", "nvm latency", "120c",
                "240c", "480c", "960c");
    {
        const RunStats vol = run(Workload::RB, Version::Volatile);
        std::printf("%-14s", "HW/Volatile");
        for (Cycles nvm : {120ULL, 240ULL, 480ULL, 960ULL}) {
            MachineParams p;
            p.nvmLatency = nvm;
            const RunStats hw = run(Workload::RB, Version::Hw, p);
            std::printf(" %10.3f",
                        static_cast<double>(hw.cycles) /
                            static_cast<double>(vol.cycles));
        }
        std::printf("\n");
    }

    // (b) POLB latency sweep vs the Fig 14 VALB result.
    std::printf("\n(b) POLB latency sweep: HW time normalized to the "
                "1-cycle-POLB HW baseline\n");
    std::printf("%-6s", "bench");
    const Cycles lats[] = {1, 2, 4, 8, 16};
    for (Cycles l : lats)
        std::printf(" %7" PRIu64 "c", l);
    std::printf("\n");

    for (Workload w : {Workload::RB, Workload::Splay}) {
        MachineParams base;
        const RunStats ref = run(w, Version::Hw, base);
        std::printf("%-6s", workloadName(w));
        for (Cycles l : lats) {
            MachineParams p;
            p.polbHitLatency = l;
            const RunStats hw = run(w, Version::Hw, p);
            std::printf(" %8.3f",
                        static_cast<double>(hw.cycles) /
                            static_cast<double>(ref.cycles));
        }
        std::printf("\n");
    }
    std::printf("\ntakeaway: POLB latency is on the load critical "
                "path (linear impact); VALB latency is hidden by the "
                "storeP unit (Fig 14, near-flat).\n");
    return 0;
}
