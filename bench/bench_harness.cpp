/**
 * @file
 * Parallel benchmark harness: runs every (workload x version) cell of
 * the Figure 11 grid concurrently — one forked child process per cell
 * — then a set of pointer-op microkernels, and writes machine-readable
 * BENCH_fig11.json / BENCH_micro.json.
 *
 * Cells run in child *processes*, not threads, for determinism:
 * branch-predictor site indices are salted at each pointer-op call
 * site's first execution (detail::nextSiteSalt), so concurrent cells
 * sharing one process would be handed salts in thread-schedule order
 * and "identical" runs would drift by a few cycles. fork() gives every
 * cell the pristine pre-run salt state: each cell's counters equal a
 * standalone run of exactly that cell, under any parallelism, every
 * time.
 *
 * The JSON records both the harness wall time and the sum of per-cell
 * wall times so the speedup is auditable, and scripts/bench_diff.py
 * compares two result files (wall regression = warning, any
 * simulated-counter drift = hard error).
 *
 * Usage: bench_harness [--quick] [--jobs N] [--out DIR]
 *                      [--fig11-only | --micro-only | --static-only |
 *                       --fault-only | --txn-only | --exec-only |
 *                       --concurrent-only]
 *   --quick   scale workloads down 100x (smoke test; implies scale
 *             via UPR_BENCH_SCALE only if that variable is unset)
 *   --jobs N  worker processes (default: hardware concurrency)
 *   --out DIR output directory for the JSON files (default: .)
 */

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include <map>

#include "bench_common.hh"
#include "bench_ir.hh"
#include "bench_json.hh"
#include "compiler/analysis/abstract_interp.hh"
#include "compiler/analysis/elision.hh"
#include "compiler/demo_programs.hh"
#include "compiler/interpreter.hh"
#include "compiler/ir_parser.hh"
#include "core/ptr.hh"
#include "faultinject/fault_sweep.hh"
#include "kvstore/concurrent_kv_store.hh"
#include "kvstore/kv_store.hh"
#include "obs/trace_ring.hh"
#include "txn_ir_workload.hh"

#ifndef UPR_GIT_REV
#define UPR_GIT_REV "unknown"
#endif

using namespace upr;
using namespace upr::bench;

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
millisSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               SteadyClock::now() - start)
        .count();
}

const Version kAllVersions[] = {Version::Volatile, Version::Sw,
                                Version::Hw, Version::Explicit};

// ----------------------------------------------------------------------
// Forked cell runner
// ----------------------------------------------------------------------

/** Fixed-size result record shipped child -> parent over a pipe. */
template <typename Stats>
struct ForkOutcome
{
    Stats stats = {};
    double wallMs = 0;
    std::uint8_t failed = 0;
    char error[160] = {};
};

using CellOutcome = ForkOutcome<RunStats>;

template <typename Stats>
void
setOutcomeError(ForkOutcome<Stats> &oc, const char *what)
{
    oc.failed = 1;
    std::snprintf(oc.error, sizeof(oc.error), "%s", what);
}

/** Live threads in this process (fork safety: must be 1 to fork). */
unsigned
threadCount()
{
    DIR *dir = opendir("/proc/self/task");
    if (dir == nullptr)
        return 1; // no procfs: cannot tell, assume quiesced
    unsigned n = 0;
    while (const dirent *e = readdir(dir)) {
        if (e->d_name[0] != '.')
            ++n;
    }
    closedir(dir);
    return n;
}

/**
 * Run @p n cells, each in its own forked child, at most @p jobs
 * children live at once. @p fn(i) computes cell i's Stats (in the
 * child). A child that dies without reporting yields a failed cell,
 * not a dead harness.
 *
 * Fork safety: fork() in a multi-threaded process duplicates only the
 * calling thread — any lock another thread holds (malloc's arena, a
 * Runtime's shard) stays locked forever in the child. Sections that
 * spawn threads (the concurrent one) must join them before the next
 * forked section runs; this runner enforces the contract by refusing
 * to fork while the process has more than one live thread.
 */
template <typename Stats, typename RunFn>
std::vector<ForkOutcome<Stats>>
runForked(std::size_t n, unsigned jobs, RunFn fn)
{
    static_assert(std::is_trivially_copyable_v<Stats>,
                  "outcome record crosses a pipe");
    std::vector<ForkOutcome<Stats>> out(n);
    std::vector<pid_t> pids(n, -1);
    std::vector<int> fds(n, -1);
    std::size_t launched = 0;
    std::size_t live = 0;

    const auto launch = [&](std::size_t i) {
        if (threadCount() > 1) {
            setOutcomeError(out[i],
                            "refusing to fork: the harness process is "
                            "multi-threaded (a previous section did "
                            "not quiesce its workers)");
            return;
        }
        int pipefd[2];
        if (pipe(pipefd) != 0) {
            setOutcomeError(out[i], "pipe() failed");
            return;
        }
        std::fflush(nullptr); // don't duplicate buffered output
        const pid_t pid = fork();
        if (pid < 0) {
            close(pipefd[0]);
            close(pipefd[1]);
            setOutcomeError(out[i], "fork() failed");
            return;
        }
        if (pid == 0) {
            close(pipefd[0]);
            ForkOutcome<Stats> oc;
            const auto t0 = SteadyClock::now();
            try {
                oc.stats = fn(i);
            } catch (const std::exception &e) {
                setOutcomeError(oc, e.what());
            }
            oc.wallMs = millisSince(t0);
            // One record, well under PIPE_BUF: a single atomic write.
            const ssize_t w = write(pipefd[1], &oc, sizeof(oc));
            _exit(w == static_cast<ssize_t>(sizeof(oc)) ? 0 : 1);
        }
        close(pipefd[1]);
        pids[i] = pid;
        fds[i] = pipefd[0];
        ++live;
    };

    const auto reap = [&] {
        int status = 0;
        const pid_t pid = waitpid(-1, &status, 0);
        if (pid < 0)
            return;
        for (std::size_t i = 0; i < n; ++i) {
            if (pids[i] != pid)
                continue;
            const ssize_t r = read(fds[i], &out[i], sizeof(out[i]));
            if (r != static_cast<ssize_t>(sizeof(out[i])) ||
                (WIFEXITED(status) && WEXITSTATUS(status) != 0) ||
                WIFSIGNALED(status)) {
                if (!out[i].failed)
                    setOutcomeError(out[i],
                                    "cell process died without "
                                    "reporting");
            }
            close(fds[i]);
            fds[i] = -1;
            pids[i] = -1;
            --live;
            return;
        }
    };

    while (launched < n || live > 0) {
        if (launched < n && live < jobs)
            launch(launched++);
        else
            reap();
    }
    return out;
}

// ----------------------------------------------------------------------
// Fig 11 grid
// ----------------------------------------------------------------------

struct Cell
{
    Workload workload;
    Version version;
    RunStats stats = {};
    double wallMs = 0;
    bool failed = false;
    std::string error = {};
};

/** Run all cells in forked children, @p jobs at a time. */
void
runGrid(std::vector<Cell> &cells, unsigned jobs)
{
    const std::vector<CellOutcome> outcomes =
        runForked<RunStats>(cells.size(), jobs, [&](std::size_t i) {
            return run(cells[i].workload, cells[i].version);
        });
    for (std::size_t i = 0; i < cells.size(); ++i) {
        cells[i].stats = outcomes[i].stats;
        cells[i].wallMs = outcomes[i].wallMs;
        cells[i].failed = outcomes[i].failed != 0;
        cells[i].error = outcomes[i].error;
    }
}

void
emitHistSummary(JsonWriter &json, const char *name,
                const HistSummary &h)
{
    json.key(name).beginObject();
    json.kv("count", h.count);
    json.kv("p50", h.p50);
    json.kv("p90", h.p90);
    json.kv("p99", h.p99);
    json.kv("max", h.max);
    json.end();
}

void
emitStats(JsonWriter &json, const RunStats &st)
{
    json.kv("cycles", st.cycles);
    json.kv("checksum", st.checksum);
    json.kv("memAccesses", st.memAccesses);
    json.kv("storePs", st.storePs);
    json.kv("polbAccesses", st.polbAccesses);
    json.kv("polbWalks", st.polbWalks);
    json.kv("valbAccesses", st.valbAccesses);
    json.kv("valbWalks", st.valbWalks);
    json.kv("branches", st.branches);
    json.kv("branchMisses", st.branchMisses);
    json.kv("dynamicChecks", st.dynamicChecks);
    json.kv("absToRel", st.absToRel);
    json.kv("relToAbs", st.relToAbs);
    json.kv("reuseHits", st.reuseHits);
    // Per-operation latency histograms of the measured phase.
    // Simulated cycles, deterministic like the counters above.
    json.key("metrics").beginObject();
    emitHistSummary(json, "checkCycles", st.checkCycles);
    emitHistSummary(json, "ptrAssignCycles", st.ptrAssignCycles);
    json.end();
}

void
emitHeader(JsonWriter &json, unsigned jobs)
{
    json.kv("schema", std::uint64_t{1});
    json.kv("gitRev", UPR_GIT_REV);
    json.kv("benchScale", benchScale());
    json.kv("jobs", std::uint64_t{jobs});
}

/** @return true on success (all cells ran, checksums agree). */
bool
runFig11(const std::string &out_dir, unsigned jobs)
{
    std::vector<Cell> cells;
    for (Workload w : kAllWorkloads)
        for (Version v : kAllVersions)
            cells.push_back(Cell{w, v});

    const auto start = SteadyClock::now();
    runGrid(cells, jobs);
    const double harness_wall = millisSince(start);

    double serial_sum = 0;
    bool ok = true;
    for (const Cell &cell : cells) {
        serial_sum += cell.wallMs;
        if (cell.failed) {
            std::fprintf(stderr, "FAIL %s/%s: %s\n",
                         workloadName(cell.workload),
                         versionName(cell.version), cell.error.c_str());
            ok = false;
        }
    }

    // Soundness: every version of a workload computed the same value.
    for (Workload w : kAllWorkloads) {
        std::uint64_t checksum = 0;
        bool have = false;
        for (const Cell &cell : cells) {
            if (cell.workload != w || cell.failed)
                continue;
            if (!have) {
                checksum = cell.stats.checksum;
                have = true;
            } else if (cell.stats.checksum != checksum) {
                std::fprintf(stderr,
                             "OUTPUT MISMATCH on %s: version %s\n",
                             workloadName(w),
                             versionName(cell.version));
                ok = false;
            }
        }
    }

    JsonWriter json;
    json.beginObject();
    emitHeader(json, jobs);
    json.kv("harnessWallMs", harness_wall);
    json.kv("serialSumMs", serial_sum);
    json.key("cells").beginArray();
    for (const Cell &cell : cells) {
        json.beginObject();
        json.kv("workload", workloadName(cell.workload));
        json.kv("version", versionName(cell.version));
        json.kv("wallMs", cell.wallMs);
        if (cell.failed) {
            json.kv("error", cell.error);
        } else {
            emitStats(json, cell.stats);
        }
        json.end();
    }
    json.end();
    json.end();

    const std::string path = out_dir + "/BENCH_fig11.json";
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("fig11 grid: %zu cells, wall %.0f ms "
                "(serial sum %.0f ms, %.2fx), %s\n",
                cells.size(), harness_wall, serial_sum,
                serial_sum / harness_wall, path.c_str());
    return ok;
}

// ----------------------------------------------------------------------
// Microkernels: tight loops over single pointer operations, the
// host-hot paths the translation caches serve. Cycle counts and model
// counters are deterministic per (kernel, version, scale).
// ----------------------------------------------------------------------

struct MicroResult
{
    std::string kernel;
    Version version;
    RunStats stats;
    double wallMs = 0;
    std::string error = {};
};

Runtime::Config
microConfig(Version v)
{
    Runtime::Config cfg;
    cfg.version = v;
    cfg.seed = 0xB0;
    return cfg;
}

/** Chase one pointer ring end to end @p laps times. */
RunStats
microPtrChase(Version v, std::uint64_t nodes, std::uint64_t laps)
{
    Runtime rt(microConfig(v));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 64 << 20);

    struct Node
    {
        Ptr<Node> next;
        std::uint64_t value = 0;
    };
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    std::vector<Ptr<Node>> ring;
    for (std::uint64_t i = 0; i < nodes; ++i) {
        Ptr<Node> n = env.alloc<Node>();
        n.setField(&Node::value, i);
        ring.push_back(n);
    }
    for (std::uint64_t i = 0; i < nodes; ++i)
        ring[i].setPtrField(&Node::next, ring[(i + 1) % nodes]);

    rt.machine().resetAllStats();
    rt.resetCounters();
    const Cycles begin = rt.machine().now();
    std::uint64_t sum = 0;
    Ptr<Node> p = ring[0];
    for (std::uint64_t i = 0; i < nodes * laps; ++i) {
        sum += p.field(&Node::value);
        p = p.ptrField(&Node::next);
    }
    return bench::detail::snapshot(rt, rt.machine().now() - begin, sum);
}

/** storeP churn: overwrite pointer slots with relative values. */
RunStats
microStorePChurn(Version v, std::uint64_t slots, std::uint64_t rounds)
{
    Runtime rt(microConfig(v));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 64 << 20);

    struct Node
    {
        Ptr<Node> next;
        std::uint64_t value = 0;
    };
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    std::vector<Ptr<Node>> cells;
    for (std::uint64_t i = 0; i < slots; ++i)
        cells.push_back(env.alloc<Node>());

    rt.machine().resetAllStats();
    rt.resetCounters();
    const Cycles begin = rt.machine().now();
    for (std::uint64_t r = 0; r < rounds; ++r)
        for (std::uint64_t i = 0; i < slots; ++i)
            cells[i].setPtrField(&Node::next,
                                 cells[(i + r + 1) % slots]);
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < slots; ++i)
        sum += cells[i].ptrField(&Node::next).bits();
    return bench::detail::snapshot(rt, rt.machine().now() - begin, sum);
}

/** Hot ra2va: dereference the same few persistent objects. */
RunStats
microResolveHot(Version v, std::uint64_t objects, std::uint64_t reps)
{
    Runtime rt(microConfig(v));
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 64 << 20);

    struct Node
    {
        Ptr<Node> next;
        std::uint64_t value = 0;
    };
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    std::vector<Ptr<Node>> objs;
    for (std::uint64_t i = 0; i < objects; ++i) {
        Ptr<Node> n = env.alloc<Node>();
        n.setField(&Node::value, i * 3 + 1);
        objs.push_back(n);
    }

    rt.machine().resetAllStats();
    rt.resetCounters();
    const Cycles begin = rt.machine().now();
    std::uint64_t sum = 0;
    for (std::uint64_t r = 0; r < reps; ++r)
        for (std::uint64_t i = 0; i < objects; ++i)
            sum += objs[i].field(&Node::value);
    return bench::detail::snapshot(rt, rt.machine().now() - begin, sum);
}

bool
runMicro(const std::string &out_dir, unsigned jobs)
{
    const std::uint64_t scale = benchScale();
    struct Kernel
    {
        const char *name;
        RunStats (*fn)(Version, std::uint64_t, std::uint64_t);
        std::uint64_t a;
        std::uint64_t b;
    };
    const Kernel kernels[] = {
        {"ptr_chase", microPtrChase, 1024, 64 / std::min<std::uint64_t>(scale, 64)},
        {"storep_churn", microStorePChurn, 512, 128 / std::min<std::uint64_t>(scale, 128)},
        {"resolve_hot", microResolveHot, 64, 2048 / std::min<std::uint64_t>(scale, 2048)},
    };

    std::vector<MicroResult> results;
    for (const Kernel &k : kernels)
        for (Version v : kAllVersions)
            results.push_back(MicroResult{k.name, v, {}, 0});

    const auto start = SteadyClock::now();
    const std::vector<CellOutcome> outcomes =
        runForked<RunStats>(results.size(), jobs, [&](std::size_t i) {
            const Kernel &k = kernels[i / 4];
            return k.fn(results[i].version, k.a, k.b);
        });
    bool ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        results[i].stats = outcomes[i].stats;
        results[i].wallMs = outcomes[i].wallMs;
        if (outcomes[i].failed) {
            results[i].error = outcomes[i].error;
            std::fprintf(stderr, "FAIL micro %s/%s: %s\n",
                         results[i].kernel.c_str(),
                         versionName(results[i].version),
                         outcomes[i].error);
            ok = false;
        }
    }
    const double harness_wall = millisSince(start);

    double serial_sum = 0;
    for (const MicroResult &r : results)
        serial_sum += r.wallMs;

    JsonWriter json;
    json.beginObject();
    emitHeader(json, jobs);
    json.kv("harnessWallMs", harness_wall);
    json.kv("serialSumMs", serial_sum);
    json.key("cells").beginArray();
    for (const MicroResult &r : results) {
        json.beginObject();
        json.kv("workload", r.kernel);
        json.kv("version", versionName(r.version));
        json.kv("wallMs", r.wallMs);
        if (!r.error.empty())
            json.kv("error", r.error);
        else
            emitStats(json, r.stats);
        json.end();
    }
    json.end();
    json.end();

    const std::string path = out_dir + "/BENCH_micro.json";
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("micro: %zu cells, wall %.0f ms, %s\n", results.size(),
                harness_wall, path.c_str());
    return ok;
}

// ----------------------------------------------------------------------
// Static-analysis section: the Fig 9 program interpreted under three
// check plans — fully dynamic, inference-pruned, and elision-pruned —
// with the plan statistics and elided-check counts alongside the
// simulated counters. Serial and in-process: the IR interpreter is
// deterministic on a fresh Runtime, and the three runs take
// milliseconds.
// ----------------------------------------------------------------------

struct StaticCell
{
    const char *variant;
    CheckPlan plan;
    std::uint64_t elided = 0;
};

bool
runStatic(const std::string &out_dir)
{
    using namespace upr::ir;
    const std::uint64_t kNodes = 200;

    Module mod = parseModule(kFig9Source);
    const InferenceResult inf = inferPointerKinds(mod, true);
    FlowAnalysis flow(mod, inf);

    std::vector<StaticCell> cells;
    cells.push_back({"sw-dynamic", insertChecks(mod, nullptr), 0});
    cells.push_back({"sw-inferred", insertChecks(mod, &inf), 0});
    {
        StaticCell c{"sw-elided", insertChecks(mod, &inf), 0};
        c.elided = elideChecks(mod, flow, c.plan).elidedSites;
        cells.push_back(std::move(c));
    }

    const auto start = SteadyClock::now();
    JsonWriter json;
    json.beginObject();
    emitHeader(json, 1);
    json.key("cells").beginArray();

    bool ok = true;
    std::uint64_t checksum = 0;
    bool have_checksum = false;
    for (const StaticCell &cell : cells) {
        const auto t0 = SteadyClock::now();
        Runtime::Config cfg;
        cfg.version = Version::Sw;
        cfg.seed = 0xB0;
        Runtime rt(cfg);
        Interpreter::Config icfg;
        icfg.pool = rt.createPool("static", 32 << 20);
        Interpreter interp(rt, mod, cell.plan, icfg);

        rt.machine().resetAllStats();
        rt.resetCounters();
        const Cycles begin = rt.machine().now();
        const std::uint64_t result = interp.call("main", {kNodes});
        const RunStats st = bench::detail::snapshot(
            rt, rt.machine().now() - begin, result);

        if (!have_checksum) {
            checksum = result;
            have_checksum = true;
        } else if (result != checksum) {
            std::fprintf(stderr,
                         "OUTPUT MISMATCH on fig9: variant %s\n",
                         cell.variant);
            ok = false;
        }

        json.beginObject();
        json.kv("workload", "fig9");
        json.kv("version", cell.variant);
        json.kv("wallMs", millisSince(t0));
        emitStats(json, st);
        json.kv("staticTotalSites", cell.plan.totalSites);
        json.kv("staticRemainingSites", cell.plan.remainingSites);
        json.kv("staticRefinedSites", cell.plan.refinedSites);
        json.kv("staticElidedSites", cell.elided);
        json.kv("irInstructions", interp.instructionCount());
        json.kv("irDynamicChecks", interp.dynamicCheckCount());
        json.end();
    }

    // Persistency cell: the transactional round workload analysed by
    // the persistency-ordering abstract interpreter. Its proof and
    // diagnostic counts are exact functions of the module, so
    // bench_diff hard-gates them — a lattice change that silently
    // proves more (or less) must recapture the golden deliberately.
    {
        const auto t0 = SteadyClock::now();
        const txnir::Program p = txnir::compile(/*elide=*/true);
        json.beginObject();
        json.kv("workload", "txn-round");
        json.kv("version", "sw-persistency");
        json.kv("wallMs", millisSince(t0));
        json.kv("txStores", p.persistency.txStores);
        json.kv("logElided", p.persistency.logElided);
        json.kv("elidedFresh", p.persistency.elidedFresh);
        json.kv("elidedDominated", p.persistency.elidedDominated);
        json.kv("persistencyDiags", p.persistency.findingCount());
        json.end();
        if (p.persistency.diags.errorCount() != 0) {
            std::fprintf(stderr,
                         "FAIL static bench: txn-round has "
                         "persistency errors:\n%s",
                         p.persistency.diags.render().c_str());
            ok = false;
        }
    }
    json.end();
    json.end();

    const std::string path = out_dir + "/BENCH_static.json";
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("static: %zu plans, wall %.0f ms, %s\n", cells.size(),
                millisSince(start), path.c_str());
    return ok;
}

// ----------------------------------------------------------------------
// Fault section: the hostile-media corruption sweep, one cell per
// retention mode. Every count is a deterministic function of the seed
// (the persistence-event stream, the retention coin flips, and the
// fault RNG are all seed-driven), so bench_diff compares the cells as
// hard-error keys: a classification shifting from `repaired` to
// `quarantined` — or worse, to `silent` — is model drift.
// ----------------------------------------------------------------------

namespace faultbench
{

using Tree = RbTree<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kSetupKeys = 8;

struct Op
{
    bool erase;
    std::uint64_t key;
    std::uint64_t value;
};

const std::vector<Op> &
ops()
{
    static const std::vector<Op> kOps = {
        {false, 100, 1000},
        {false, 3, 333},
        {true, 5, 0},
        {false, 101, 1010},
    };
    return kOps;
}

std::map<std::uint64_t, std::uint64_t>
referenceState(std::size_t n)
{
    std::map<std::uint64_t, std::uint64_t> m;
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        m[i] = i * 10;
    for (std::size_t i = 0; i < n && i < ops().size(); ++i) {
        if (ops()[i].erase)
            m.erase(ops()[i].key);
        else
            m[ops()[i].key] = ops()[i].value;
    }
    return m;
}

Runtime::Config
config()
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 1234;
    return cfg;
}

void
workload(CrashInjector &injector, std::size_t &committed)
{
    committed = 0;
    Runtime rt(config());
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("sweep", 1 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    KvStore<Tree> store(env);
    rt.pools().pool(pool).setRootOff(static_cast<PoolOffset>(
        PtrRepr::offsetOf(store.index().header().bits())));
    for (std::uint64_t i = 0; i < kSetupKeys; ++i)
        store.set(i, i * 10);

    injector.attach(rt.pools().pool(pool).backing());
    for (const Op &op : ops()) {
        rt.beginTxn(pool);
        if (op.erase)
            store.index().erase(op.key);
        else
            store.set(op.key, op.value);
        rt.commitTxn();
        ++committed;
    }
}

bool
contentValid(const std::vector<std::uint8_t> &image,
             std::size_t committed)
{
    try {
        Backing b;
        b.assign(image);
        Runtime rt(config());
        RuntimeScope scope(rt);
        const PoolId id = rt.pools().adoptImage(std::move(b), "v");

        const ArenaReport arena =
            rt.pools().allocator(id).inspectArena();
        if (!arena.tagsValid || !arena.freeListValid ||
            !arena.usedBytesMatch)
            return false;

        const PoolOffset root = rt.pools().pool(id).rootOff();
        if (root == 0)
            return false;
        MemEnv env = MemEnv::persistentEnv(rt, id);
        Tree tree(env, Ptr<Tree::Header>::fromBits(
                           PtrRepr::makeRelative(id, root)));
        tree.validate();
        std::map<std::uint64_t, std::uint64_t> actual;
        tree.forEach([&](std::uint64_t k, std::uint64_t v) {
            actual.emplace(k, v);
        });
        return actual == referenceState(committed) ||
               actual == referenceState(committed + 1);
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace faultbench

bool
runFault(const std::string &out_dir)
{
    // Sweeps spew (expected) torn-log warnings; keep the bench output
    // readable.
    setLogSink(+[](LogLevel, const std::string &) {});

    const CrashMode kModes[] = {
        CrashMode::DiscardUnfenced, CrashMode::RetainRandom,
        CrashMode::RetainEpoch, CrashMode::RetainBoundedStale};

    const auto start = SteadyClock::now();
    JsonWriter json;
    json.beginObject();
    emitHeader(json, 1);
    json.key("cells").beginArray();

    bool ok = true;
    std::size_t committed = 0;
    for (CrashMode mode : kModes) {
        FaultSweepConfig cfg;
        cfg.mode = mode;
        cfg.seed = 99;
        cfg.pointStride = 61;
        const auto t0 = SteadyClock::now();
        const FaultSweepResult r = faultSweep(
            [&committed](CrashInjector &inj) {
                faultbench::workload(inj, committed);
            },
            [&committed](const std::vector<std::uint8_t> &image,
                         std::uint64_t) {
                return faultbench::contentValid(image, committed);
            },
            cfg);

        if (r.silent != 0 || r.containment != 0) {
            std::fprintf(stderr,
                         "FAIL fault sweep (%s): %llu silent, %llu "
                         "containment failures\n",
                         crashModeName(mode),
                         (unsigned long long)r.silent,
                         (unsigned long long)r.containment);
            ok = false;
        }

        json.beginObject();
        json.kv("workload", "fault_sweep");
        json.kv("version", crashModeName(mode));
        json.kv("wallMs", millisSince(t0));
        json.kv("crashPointsSampled", r.crashPointsSampled);
        json.kv("injections", r.injections);
        json.kv("benign", r.benign);
        json.kv("repaired", r.repaired);
        json.kv("quarantined", r.quarantined);
        json.kv("rejected", r.rejected);
        json.kv("noEffect", r.noEffect);
        json.kv("silent", r.silent);
        json.kv("containment", r.containment);
        json.end();
    }
    json.end();
    json.end();
    setLogSink(nullptr);

    const std::string path = out_dir + "/BENCH_fault.json";
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("fault: %zu modes, wall %.0f ms, %s\n",
                sizeof(kModes) / sizeof(kModes[0]),
                millisSince(start), path.c_str());
    return ok;
}

// ----------------------------------------------------------------------
// Exec section: the compiler-path workloads run through the
// direct-threaded FastExecutor in both tiers. Model is the simulated
// machine (bit-exact to the Interpreter); Native skips the timing
// model and is expected to be >= 10x faster on at least one
// workload. The harness itself enforces the cross-tier contract —
// identical checksum, instruction count and dynamic-check count per
// workload — and scripts/bench_diff.py re-checks it between runs.
// Serial and in-process: the emitted counters are plan functions of
// the workload, independent of branch-predictor salt order.
// ----------------------------------------------------------------------

bool
runExec(const std::string &out_dir)
{
    const std::uint64_t scale = benchScale();
    const std::vector<ExecWorkload> workloads = execWorkloads(scale);
    const ExecTier kTiers[] = {ExecTier::Model, ExecTier::Native};

    const auto start = SteadyClock::now();
    JsonWriter json;
    json.beginObject();
    emitHeader(json, 1);
    json.key("cells").beginArray();

    bool ok = true;
    for (const ExecWorkload &w : workloads) {
        ExecProgram prog;
        try {
            prog = compileExecProgram(w.source);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "FAIL exec %s: compile: %s\n",
                         w.name, e.what());
            ok = false;
            continue;
        }

        ExecRun runs[2];
        double wall[2] = {0, 0};
        bool ran[2] = {false, false};
        for (int t = 0; t < 2; ++t) {
            const auto t0 = SteadyClock::now();
            try {
                runs[t] = runExecTier(prog, kTiers[t], w.args);
                ran[t] = true;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "FAIL exec %s/%s: %s\n", w.name,
                             execTierName(kTiers[t]), e.what());
                ok = false;
            }
            wall[t] = millisSince(t0);

            json.beginObject();
            json.kv("workload", w.name);
            json.kv("version", execTierName(kTiers[t]));
            json.kv("wallMs", wall[t]);
            if (ran[t]) {
                json.kv("checksum", runs[t].result);
                json.kv("dynamicChecks", runs[t].dynamicChecks);
                json.kv("irInstructions", runs[t].instructions);
                json.kv("loweredSites", runs[t].lowered.sites);
                json.kv("retainedGuards",
                        runs[t].lowered.retainedGuards);
                json.kv("elidedGuards", runs[t].lowered.elidedGuards);
                json.kv("elidedSites", prog.elidedSites);
                json.kv("fusedPairs", runs[t].lowered.fusedPairs);
            } else {
                json.kv("error", "tier run failed");
            }
            json.end();
        }

        if (ran[0] && ran[1]) {
            if (runs[0].result != runs[1].result ||
                runs[0].instructions != runs[1].instructions ||
                runs[0].dynamicChecks != runs[1].dynamicChecks) {
                std::fprintf(
                    stderr,
                    "TIER MISMATCH on %s: model "
                    "(%llu, %llu insts, %llu checks) vs native "
                    "(%llu, %llu insts, %llu checks)\n",
                    w.name, (unsigned long long)runs[0].result,
                    (unsigned long long)runs[0].instructions,
                    (unsigned long long)runs[0].dynamicChecks,
                    (unsigned long long)runs[1].result,
                    (unsigned long long)runs[1].instructions,
                    (unsigned long long)runs[1].dynamicChecks);
                ok = false;
            }
            std::printf("exec %-10s model %8.1f ms, native %7.1f ms "
                        "(%.1fx), %llu/%llu guards retained\n",
                        w.name, wall[0], wall[1],
                        wall[1] > 0 ? wall[0] / wall[1] : 0.0,
                        (unsigned long long)
                            runs[0].lowered.retainedGuards,
                        (unsigned long long)runs[0].lowered.sites);
        }
    }
    json.end();
    json.end();

    const std::string path = out_dir + "/BENCH_exec.json";
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("exec: %zu workloads x 2 tiers, wall %.0f ms, %s\n",
                workloads.size(), millisSince(start), path.c_str());
    return ok;
}

// ----------------------------------------------------------------------
// Txn section: the same write-heavy transactional workload committed
// through the undo engine, the redo engine, and redo group commit.
// The flush/fence tallies come from the "txn" metrics group and are
// exact functions of the fence-accounting model, so bench_diff treats
// them as hard-error keys; commit latency is real wall time and is
// reported (like wallMs) for information only.
// ----------------------------------------------------------------------

namespace txnbench
{

struct TxnCell
{
    const char *variant;
    EngineKind engine;
    unsigned group;
};

} // namespace txnbench

bool
runTxn(const std::string &out_dir)
{
    const txnbench::TxnCell cells[] = {
        {"undo", EngineKind::Undo, 1},
        {"redo", EngineKind::Redo, 1},
        {"redo-group4", EngineKind::Redo, 4},
    };
    constexpr std::uint64_t kTxns = 96;
    constexpr std::uint64_t kWritesPerTxn = 4;

    const auto start = SteadyClock::now();
    JsonWriter json;
    json.beginObject();
    emitHeader(json, 1);
    json.key("cells").beginArray();

    bool ok = true;
    std::map<std::string, std::uint64_t> fences_by_variant;
    for (const txnbench::TxnCell &cell : cells) {
        const auto t0 = SteadyClock::now();
        Runtime rt(faultbench::config());
        RuntimeScope scope(rt);
        const PoolId pool =
            rt.createPool("txn", 1 << 20, cell.engine);
        rt.setGroupCommitSize(cell.group);
        Pool &p = rt.pools().pool(pool);
        const Bytes base = p.header().arenaStart + 64;

        // Snapshot after pool creation: formatting the fresh log
        // control block costs one flush+fence outside the model.
        const obs::MetricsSnapshot before =
            obs::MetricsRegistry::instance().snapshot();

        for (std::uint64_t t = 0; t < kTxns; ++t) {
            rt.beginTxn(pool);
            for (std::uint64_t w = 0; w < kWritesPerTxn; ++w) {
                const std::uint64_t n = t * kWritesPerTxn + w;
                const std::uint64_t value = n * 2654435761u;
                // 64-byte spacing: distinct journal runs, one undo
                // record each; wraps over a 16 KiB window.
                p.backing().write(base + 64 * (n % 256), &value,
                                  sizeof(value));
            }
            rt.commitTxn();
        }
        rt.flushGroup(); // drain a trailing partial batch

        const obs::MetricsSnapshot d =
            obs::MetricsRegistry::instance().snapshot().minus(before);
        const auto get = [&d](const char *name) -> std::uint64_t {
            const auto it = d.counters.find(name);
            return it == d.counters.end() ? 0 : it->second;
        };
        const std::uint64_t commits =
            get("txn.undoCommits") + get("txn.redoCommits");
        const std::uint64_t fences =
            get("txn.undoFences") + get("txn.redoFences");
        const std::uint64_t flushes =
            get("txn.undoFlushes") + get("txn.redoFlushes");
        fences_by_variant[cell.variant] = fences;

        if (commits != kTxns) {
            std::fprintf(stderr,
                         "FAIL txn bench (%s): %llu commits counted, "
                         "%llu expected\n",
                         cell.variant, (unsigned long long)commits,
                         (unsigned long long)kTxns);
            ok = false;
        }

        json.beginObject();
        json.kv("workload", "txn");
        json.kv("version", cell.variant);
        json.kv("wallMs", millisSince(t0));
        json.kv("txns", kTxns);
        json.kv("writesPerTxn", kWritesPerTxn);
        json.kv("commits", commits);
        json.kv("fences", fences);
        json.kv("flushes", flushes);
        json.kv("groupBatches", get("txn.groupBatches"));
        json.kv("groupTxns", get("txn.groupTxns"));
        emitHistSummary(json, "commitNs",
                        summarize(rt.txnCommitHistogram()));
        json.end();
    }

    // IR cells: the transactional round workload with and without
    // the persistency analysis's logging-elision proofs, on both
    // engines. Each cell runs through the Interpreter and both
    // FastExecutor tiers and the engine counters (and the committed
    // pool image) must be bit-identical across the three — elision is
    // a property of the plan, not of who executes it. The measured
    // win: undo-ir-elided issues fewer flushes than undo-ir, and
    // redo-ir-elided journals fewer bytes than redo-ir, while the
    // committed user bytes stay byte-identical to the unelided run.
    {
        const txnir::Program plain = txnir::compile(/*elide=*/false);
        const txnir::Program elided = txnir::compile(/*elide=*/true);
        struct IrCell
        {
            const char *variant;
            EngineKind engine;
            const txnir::Program *prog;
        };
        const IrCell ircells[] = {
            {"undo-ir", EngineKind::Undo, &plain},
            {"undo-ir-elided", EngineKind::Undo, &elided},
            {"redo-ir", EngineKind::Redo, &plain},
            {"redo-ir-elided", EngineKind::Redo, &elided},
        };
        static const char *const kTxnCounters[] = {
            "txn.undoCommits",     "txn.redoCommits",
            "txn.undoFlushes",     "txn.redoFlushes",
            "txn.undoFences",      "txn.redoFences",
            "txn.undoElidedWrites", "txn.redoElidedRuns",
            "txn.redoJournalEntries", "txn.redoJournalBytes",
        };
        std::map<std::string, std::map<std::string, std::uint64_t>>
            by_variant;
        std::map<EngineKind, std::vector<std::uint8_t>> user_bytes;
        for (const IrCell &cell : ircells) {
            const auto t0 = SteadyClock::now();
            std::map<std::string, std::uint64_t> counters;
            std::vector<std::uint8_t> image0;
            for (txnir::Tier tier :
                 {txnir::Tier::Interp, txnir::Tier::Model,
                  txnir::Tier::Native}) {
                const obs::MetricsSnapshot before =
                    obs::MetricsRegistry::instance().snapshot();
                std::vector<std::uint8_t> image;
                const std::vector<std::uint64_t> bits = txnir::run(
                    *cell.prog, cell.engine, tier, nullptr, nullptr,
                    &image);
                const obs::MetricsSnapshot d =
                    obs::MetricsRegistry::instance()
                        .snapshot()
                        .minus(before);
                std::map<std::string, std::uint64_t> cur;
                for (const char *name : kTxnCounters) {
                    const auto it = d.counters.find(name);
                    cur[name] =
                        it == d.counters.end() ? 0 : it->second;
                }
                if (tier == txnir::Tier::Interp) {
                    counters = std::move(cur);
                    image0 = std::move(image);
                    // The committed user data, for the plain-vs-
                    // elided comparison below.
                    std::vector<std::uint8_t> cells_bytes;
                    for (const PoolOffset o : txnir::cellOffsets(bits))
                        cells_bytes.insert(cells_bytes.end(),
                                           image0.begin() + o,
                                           image0.begin() + o + 64);
                    if (user_bytes.count(cell.engine) &&
                        user_bytes[cell.engine] != cells_bytes) {
                        std::fprintf(stderr,
                                     "FAIL txn bench (%s): elision "
                                     "changed the committed user "
                                     "bytes\n",
                                     cell.variant);
                        ok = false;
                    }
                    user_bytes[cell.engine] = std::move(cells_bytes);
                } else if (cur != counters || image != image0) {
                    std::fprintf(stderr,
                                 "TIER MISMATCH on %s: engine "
                                 "counters or pool image diverge "
                                 "from the Interpreter run\n",
                                 cell.variant);
                    ok = false;
                }
            }
            by_variant[cell.variant] = counters;
            const auto get = [&counters](const char *n) {
                return counters.at(n);
            };
            json.beginObject();
            json.kv("workload", "txn-ir");
            json.kv("version", cell.variant);
            json.kv("wallMs", millisSince(t0));
            json.kv("txns", get("txn.undoCommits") +
                                get("txn.redoCommits"));
            json.kv("commits", get("txn.undoCommits") +
                                   get("txn.redoCommits"));
            json.kv("fences",
                    get("txn.undoFences") + get("txn.redoFences"));
            json.kv("flushes",
                    get("txn.undoFlushes") + get("txn.redoFlushes"));
            json.kv("undoElidedWrites", get("txn.undoElidedWrites"));
            json.kv("redoElidedRuns", get("txn.redoElidedRuns"));
            json.kv("redoJournalBytes", get("txn.redoJournalBytes"));
            json.kv("logElided", cell.prog->persistency.logElided);
            json.end();
        }

        // The measured elision win, gated hard: each engine's cost
        // shrinks in its own currency (undo: flushes; redo: journaled
        // bytes).
        const auto of = [&by_variant](const char *v, const char *c) {
            return by_variant.at(v).at(c);
        };
        if (!(of("undo-ir-elided", "txn.undoFlushes") <
              of("undo-ir", "txn.undoFlushes"))) {
            std::fprintf(stderr,
                         "FAIL txn bench: elision did not reduce "
                         "undo flushes (%llu vs %llu)\n",
                         (unsigned long long)of("undo-ir-elided",
                                                "txn.undoFlushes"),
                         (unsigned long long)of("undo-ir",
                                                "txn.undoFlushes"));
            ok = false;
        }
        if (!(of("redo-ir-elided", "txn.redoJournalBytes") <
              of("redo-ir", "txn.redoJournalBytes"))) {
            std::fprintf(stderr,
                         "FAIL txn bench: elision did not reduce "
                         "redo journal bytes (%llu vs %llu)\n",
                         (unsigned long long)of(
                             "redo-ir-elided",
                             "txn.redoJournalBytes"),
                         (unsigned long long)of(
                             "redo-ir", "txn.redoJournalBytes"));
            ok = false;
        }
    }
    json.end();
    json.end();

    // The headline invariant of the redo design: per committed
    // transaction, redo fences strictly less than undo, and group
    // commit strictly less than solo redo.
    if (!(fences_by_variant["redo"] < fences_by_variant["undo"] &&
          fences_by_variant["redo-group4"] <
              fences_by_variant["redo"])) {
        std::fprintf(stderr,
                     "FAIL txn bench: fence ordering violated "
                     "(undo=%llu redo=%llu group4=%llu)\n",
                     (unsigned long long)fences_by_variant["undo"],
                     (unsigned long long)fences_by_variant["redo"],
                     (unsigned long long)
                         fences_by_variant["redo-group4"]);
        ok = false;
    }

    const std::string path = out_dir + "/BENCH_txn.json";
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("txn: %zu engines + 4 ir cells, wall %.0f ms, %s\n",
                sizeof(cells) / sizeof(cells[0]), millisSince(start),
                path.c_str());
    return ok;
}

// ----------------------------------------------------------------------
// Concurrent section: the sharded multi-threaded KV store — T worker
// threads, one shard-owned Runtime each — over YCSB presets at
// T in {1, 2, 4}. Every reported counter depends only on per-shard
// sequential histories (never on thread timing), so bench_diff
// hard-gates them all even though real threads run the cells. The
// T=1 cell is additionally checked in-process against a plain
// single-Runtime reference: any drift fails the cell, proving the
// sharding machinery costs nothing in model terms at one thread.
// Cells still run in forked children (pristine branch-salt state);
// the workers live and die inside the child, so the parent stays
// single-threaded for the next fork.
// ----------------------------------------------------------------------

namespace concbench
{

/** Pipe-safe record of one (preset, threads) cell. */
struct ConcurrentStats
{
    std::uint64_t threads = 0;
    std::uint64_t gets = 0;
    std::uint64_t getHits = 0;
    std::uint64_t sets = 0;
    std::uint64_t checksum = 0;
    std::uint64_t maxCycles = 0;
    std::uint64_t sumCycles = 0;
    std::uint64_t commits = 0;
    HistSummary commitNs = {};
};

WorkloadSpec
spec(char preset)
{
    WorkloadSpec s = ycsbPreset(preset);
    s.recordCount = 10'000 / benchScale();
    s.operationCount = 100'000 / benchScale();
    return s;
}

ShardedRuntime::Config
fleetConfig(unsigned threads)
{
    ShardedRuntime::Config cfg;
    cfg.shards = threads;
    cfg.runtime.version = Version::Hw;
    cfg.runtime.seed = 0xC0;
    cfg.poolName = "bench";
    cfg.poolSize = 32ULL << 20;
    cfg.engine = EngineKind::Undo;
    return cfg;
}

ConcurrentStats
runCell(char preset, unsigned threads)
{
    const YcsbWorkload workload(spec(preset));
    ShardedRuntime fleet(fleetConfig(threads));
    ConcurrentKvStore store(fleet);
    const KvConcurrentResult res = store.run(workload);

    ConcurrentStats st;
    st.threads = threads;
    st.gets = res.gets;
    st.getHits = res.getHits;
    st.sets = res.sets;
    st.checksum = res.checksum;
    st.maxCycles = res.maxCycles;
    st.sumCycles = res.sumCycles;

    // Fleet-wide commit latency: the per-shard histograms merged.
    obs::HistogramData commit;
    for (unsigned s = 0; s < threads; ++s)
        commit.merge(fleet.runtime(s).txnCommitHistogram().data());
    st.commits = commit.count;
    st.commitNs.count = commit.count;
    st.commitNs.p50 = commit.percentile(50);
    st.commitNs.p90 = commit.percentile(90);
    st.commitNs.p99 = commit.percentile(99);
    st.commitNs.max = commit.max;

    if (threads == 1) {
        // Zero-drift gate: one plain Runtime, one HashMap, the same
        // per-operation transactions and checksum fold — no fleet
        // machinery at all.
        KvRunResult ref;
        Runtime rt(fleetConfig(1).runtime);
        RuntimeScope scope(rt);
        const PoolId pool =
            rt.createPool("ref", 32ULL << 20, EngineKind::Undo);
        HashMap<std::uint64_t, std::uint64_t> table(
            MemEnv::persistentEnv(rt, pool));
        table.reserve(workload.loadOps().size());
        for (const KvOp &op : workload.loadOps()) {
            rt.beginTxn(pool);
            table.insert(op.key, op.value);
            rt.commitTxn();
        }
        for (const KvOp &op : workload.runOps()) {
            if (op.kind == KvOp::Kind::Get) {
                ++ref.gets;
                if (auto v = table.find(op.key)) {
                    ++ref.getHits;
                    ref.checksum ^= *v;
                    ref.checksum =
                        (ref.checksum << 1) | (ref.checksum >> 63);
                }
            } else {
                ++ref.sets;
                rt.beginTxn(pool);
                table.insert(op.key, op.value);
                rt.commitTxn();
            }
        }
        if (ref.gets != st.gets || ref.getHits != st.getHits ||
            ref.sets != st.sets || ref.checksum != st.checksum) {
            throw std::runtime_error(
                "T=1 counter drift vs the single-runtime reference");
        }
    }
    return st;
}

} // namespace concbench

bool
runConcurrent(const std::string &out_dir, unsigned jobs)
{
    struct CCell
    {
        char preset;
        unsigned threads;
    };
    std::vector<CCell> cells;
    for (const char p : {'a', 'b', 'f'})
        for (const unsigned t : {1u, 2u, 4u})
            cells.push_back(CCell{p, t});

    const auto start = SteadyClock::now();
    const auto outcomes = runForked<concbench::ConcurrentStats>(
        cells.size(), jobs, [&](std::size_t i) {
            return concbench::runCell(cells[i].preset,
                                      cells[i].threads);
        });
    const double harness_wall = millisSince(start);

    double serial_sum = 0;
    bool ok = true;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        serial_sum += outcomes[i].wallMs;
        if (outcomes[i].failed) {
            std::fprintf(stderr, "FAIL concurrent ycsb_%c/t%u: %s\n",
                         cells[i].preset, cells[i].threads,
                         outcomes[i].error);
            ok = false;
        }
    }

    JsonWriter json;
    json.beginObject();
    emitHeader(json, jobs);
    json.kv("harnessWallMs", harness_wall);
    json.kv("serialSumMs", serial_sum);
    json.key("cells").beginArray();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const concbench::ConcurrentStats &st = outcomes[i].stats;
        json.beginObject();
        json.kv("workload", std::string("ycsb_") + cells[i].preset);
        json.kv("version", "t" + std::to_string(cells[i].threads));
        json.kv("wallMs", outcomes[i].wallMs);
        if (outcomes[i].failed) {
            json.kv("error", outcomes[i].error);
        } else {
            json.kv("threads", st.threads);
            json.kv("gets", st.gets);
            json.kv("getHits", st.getHits);
            json.kv("sets", st.sets);
            json.kv("checksum", st.checksum);
            json.kv("maxCycles", st.maxCycles);
            json.kv("sumCycles", st.sumCycles);
            json.kv("commits", st.commits);
            emitHistSummary(json, "commitNs", st.commitNs);
        }
        json.end();
    }
    json.end();
    json.end();

    const std::string path = out_dir + "/BENCH_concurrent.json";
    if (!json.writeFile(path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::printf("concurrent: %zu cells, wall %.0f ms "
                "(serial sum %.0f ms), %s\n",
                cells.size(), harness_wall, serial_sum, path.c_str());
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    std::string out_dir = ".";
    bool fig11 = true;
    bool micro = true;
    bool static_sec = true;
    // Opt-in only: the sweep exercises the fault-injection paths,
    // which must stay untouched (and their lazy "fault" metrics group
    // unregistered) in default runs so the existing BENCH goldens and
    // metrics dumps stay bit-identical.
    bool fault = false;
    // Opt-in for the same reason: running transactions would register
    // the lazy "txn" metrics group.
    bool txn = false;
    // Opt-in for the same reason: lowering registers the lazy "exec"
    // metrics group.
    bool exec = false;
    // Opt-in for the same reason: shard fleets register the lazy
    // "txn" group and prefixed per-shard groups.
    bool concurrent = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--quick")) {
            // Smoke mode: shrink workloads unless the caller already
            // pinned a scale explicitly.
            setenv("UPR_BENCH_SCALE", "100", /*overwrite=*/0);
        } else if (!std::strcmp(arg, "--jobs") && i + 1 < argc) {
            const long v = std::atol(argv[++i]);
            if (v >= 1)
                jobs = static_cast<unsigned>(v);
        } else if (!std::strcmp(arg, "--out") && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (!std::strcmp(arg, "--fig11-only")) {
            micro = false;
            static_sec = false;
        } else if (!std::strcmp(arg, "--micro-only")) {
            fig11 = false;
            static_sec = false;
        } else if (!std::strcmp(arg, "--static-only")) {
            fig11 = false;
            micro = false;
        } else if (!std::strcmp(arg, "--fault-only")) {
            fig11 = false;
            micro = false;
            static_sec = false;
            fault = true;
        } else if (!std::strcmp(arg, "--txn-only")) {
            fig11 = false;
            micro = false;
            static_sec = false;
            txn = true;
        } else if (!std::strcmp(arg, "--exec-only")) {
            fig11 = false;
            micro = false;
            static_sec = false;
            exec = true;
        } else if (!std::strcmp(arg, "--concurrent-only")) {
            fig11 = false;
            micro = false;
            static_sec = false;
            concurrent = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--jobs N] [--out DIR] "
                         "[--fig11-only | --micro-only | "
                         "--static-only | --fault-only | "
                         "--txn-only | --exec-only | "
                         "--concurrent-only]\n",
                         argv[0]);
            return 2;
        }
    }

    printConfigBanner();
    std::printf("# harness: %u worker process(es), git %s\n", jobs,
                UPR_GIT_REV);

    bool ok = true;
    if (fig11)
        ok = runFig11(out_dir, jobs) && ok;
    if (micro)
        ok = runMicro(out_dir, jobs) && ok;
    if (static_sec)
        ok = runStatic(out_dir) && ok;
    if (fault)
        ok = runFault(out_dir) && ok;
    if (txn)
        ok = runTxn(out_dir) && ok;
    if (exec)
        ok = runExec(out_dir) && ok;
    if (concurrent)
        ok = runConcurrent(out_dir, jobs) && ok;

    // With UPR_OBS_TRACE set, dump the harness process's event ring
    // (the serial static section and any in-process setup; forked
    // cells have their own rings that die with them).
    if (obs::traceEnabled()) {
        const std::string path = out_dir + "/BENCH_trace.json";
        std::ofstream trace(path);
        if (trace) {
            obs::traceRing().exportChromeTrace(trace);
            std::printf("trace: %llu events, %s\n",
                        (unsigned long long)
                            obs::traceRing().appended(),
                        path.c_str());
        } else {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
