/**
 * @file
 * Ablation for the Sec VI / Fig 10 discussion: why the UPR pass must
 * run *after* scalar optimizations, i.e. why value-numbering away
 * "redundant" ra2va conversions is unsound.
 *
 * The codelet is the paper's `p != q && p != o`: two conversions of
 * the same pointer p. A value-numbering compiler would keep one. We
 * measure what that buys (cycles) and demonstrate what it breaks: if
 * the pool detaches between the two uses, the checked program faults
 * at the second conversion (correct), while the "optimized" program
 * silently reuses a stale translation.
 */

#include <cinttypes>
#include <cstdio>

#include "containers/memory_env.hh"

using namespace upr;

namespace
{

struct Cell
{
    std::uint64_t v = 0;
};

/** Run the p!=q && p!=o codelet @p iters times; return cycles. */
Cycles
codelet(Runtime &rt, Ptr<Cell> p, Ptr<Cell> q, Ptr<Cell> o,
        std::uint64_t iters, bool value_numbered, std::uint64_t *sink)
{
    const Cycles start = rt.machine().now();
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
        if (value_numbered) {
            // One conversion of p, reused for both comparisons —
            // what value numbering would emit.
            const SimAddr pva = rt.resolveForAccess(p.bits(), 1);
            const SimAddr qva = rt.resolveForAccess(q.bits(), 2);
            const SimAddr ova = rt.resolveForAccess(o.bits(), 3);
            acc += (pva != qva && pva != ova) ? 1 : 0;
        } else {
            // The sound SW code: each operation converts on its own
            // (Fig 10 left).
            acc += (p != q && p != o) ? 1 : 0;
        }
    }
    *sink = acc;
    return rt.machine().now() - start;
}

} // namespace

int
main()
{
    std::printf("Ablation: optimization ordering vs soundness "
                "(Sec VI / Fig 10)\n\n");

    // Performance half: what value numbering would save.
    {
        Runtime::Config cfg;
        cfg.version = Version::Sw;
        cfg.hwConversionReuse = false;
        Runtime rt(cfg);
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("opt", 16 << 20);
        MemEnv env = MemEnv::persistentEnv(rt, pool);
        Ptr<Cell> p = env.alloc<Cell>();
        Ptr<Cell> q = env.alloc<Cell>();
        Ptr<Cell> o = env.alloc<Cell>();

        std::uint64_t s1 = 0, s2 = 0;
        const Cycles sound = codelet(rt, p, q, o, 10'000, false, &s1);
        const Cycles vn = codelet(rt, p, q, o, 10'000, true, &s2);
        std::printf("codelet p!=q && p!=o, 10k iterations (SW):\n");
        std::printf("  sound per-op conversions: %12" PRIu64
                    " cycles\n", sound);
        std::printf("  value-numbered:           %12" PRIu64
                    " cycles (%.1f%% faster, results agree: %s)\n",
                    vn, 100.0 * (1.0 - static_cast<double>(vn) /
                                           static_cast<double>(sound)),
                    s1 == s2 ? "yes" : "NO");
    }

    // Soundness half: pool detach between the two uses of p.
    {
        Runtime::Config cfg;
        cfg.version = Version::Sw;
        Runtime rt(cfg);
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("opt", 16 << 20);
        MemEnv env = MemEnv::persistentEnv(rt, pool);
        Ptr<Cell> p = env.alloc<Cell>();
        Ptr<Cell> q = env.alloc<Cell>();

        // First use of p converts fine...
        const SimAddr stale = rt.resolveForAccess(p.bits(), 1);
        (void)rt.resolveForAccess(q.bits(), 2);

        // ...the pool detaches (another thread / explicit close)...
        rt.pools().detach(pool);

        // Sound code: the second conversion faults (Fig 10 right).
        bool faulted = false;
        try {
            (void)rt.resolveForAccess(p.bits(), 3);
        } catch (const Fault &f) {
            faulted = f.kind() == FaultKind::PoolDetached;
        }

        // Value-numbered code: silently reuses the stale address —
        // which now points at unmapped (or worse, remapped) memory.
        bool stale_is_dead = !rt.space().isMapped(stale, 1);

        std::printf("\ndetach between the two uses of p:\n");
        std::printf("  sound code: pool-detached fault raised: %s\n",
                    faulted ? "yes (correct)" : "NO (bug)");
        std::printf("  value-numbered code: reuses stale VA 0x%"
                    PRIx64 " -> unmapped: %s\n",
                    stale, stale_is_dead ? "yes (silent corruption "
                    "hazard)" : "no");
        std::printf("\nconclusion: run the UPR pass after scalar "
                    "optimizations; do not value-number ra2va.\n");
        return (faulted && stale_is_dead) ? 0 : 1;
    }
}
