/**
 * @file
 * Figure 13 reproduction: branch mispredictions normalized to the
 * Volatile version. The SW version's dynamic checks are conditional
 * branches; the paper reports 6.7x-2944x more mispredictions for SW
 * than HW. The HW version adds no branches at all (checks are wired
 * logic at effective-address generation), so it should sit at ~1.0.
 */

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

int
main()
{
    printConfigBanner();
    std::printf("\nFigure 13: branch mispredictions normalized to "
                "Volatile (lower is better)\n");
    std::printf("%-6s %12s %12s %12s %12s %10s\n", "bench", "Volatile",
                "HW", "SW", "Explicit", "SW/HW");

    for (Workload w : kAllWorkloads) {
        const RunStats vol = run(w, Version::Volatile);
        const RunStats hw = run(w, Version::Hw);
        const RunStats sw = run(w, Version::Sw);
        const RunStats ex = run(w, Version::Explicit);

        const double base =
            std::max<std::uint64_t>(vol.branchMisses, 1);
        const double h = static_cast<double>(hw.branchMisses) / base;
        const double s = static_cast<double>(sw.branchMisses) / base;
        const double e = static_cast<double>(ex.branchMisses) / base;

        std::printf("%-6s %12.2f %12.2f %12.2f %12.2f %10.1f\n",
                    workloadName(w), 1.0, h, s, e,
                    s / std::max(h, 1e-9));
    }

    std::printf("\n(absolute branch counts, for reference)\n");
    std::printf("%-6s %14s %14s %14s\n", "bench", "Volatile.br",
                "SW.br", "SW.miss");
    for (Workload w : kAllWorkloads) {
        const RunStats vol = run(w, Version::Volatile);
        const RunStats sw = run(w, Version::Sw);
        std::printf("%-6s %14" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
                    workloadName(w), vol.branches, sw.branches,
                    sw.branchMisses);
    }
    std::printf("\npaper expectation: SW mispredictions 6.7-2944x "
                "those of HW; HW ~= Volatile\n");
    return 0;
}
