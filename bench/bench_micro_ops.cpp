/**
 * @file
 * google-benchmark microbenchmarks of the UPR primitive operations —
 * host-side cost of the simulation itself plus simulated-cycle cost
 * per operation for each version. Useful for spotting regressions in
 * the runtime fast paths.
 */

#include <benchmark/benchmark.h>

#include "containers/memory_env.hh"

using namespace upr;

namespace
{

struct Node
{
    Ptr<Node> next;
    std::uint64_t v = 0;
};

Version
versionOf(const benchmark::State &state)
{
    switch (state.range(0)) {
      case 0: return Version::Volatile;
      case 1: return Version::Sw;
      case 2: return Version::Hw;
      default: return Version::Explicit;
    }
}

/** Label helper so --benchmark_filter works on version names. */
void
setLabel(benchmark::State &state, Runtime &rt, Cycles cycles)
{
    state.SetLabel(std::string(versionName(rt.version())) + " " +
                   std::to_string(cycles / state.iterations()) +
                   " simcycles/op");
}

void
BM_Resolve(benchmark::State &state)
{
    Runtime::Config cfg;
    cfg.version = versionOf(state);
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 1 << 20);
    const PtrBits p = rt.pmallocBits(pool, 64);

    const Cycles start = rt.machine().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.resolveForAccess(p, 1));
    setLabel(state, rt, rt.machine().now() - start);
}
BENCHMARK(BM_Resolve)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_FieldLoad(benchmark::State &state)
{
    Runtime::Config cfg;
    cfg.version = versionOf(state);
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 1 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    Ptr<Node> n = env.alloc<Node>();
    n.setField(&Node::v, std::uint64_t{5});

    const Cycles start = rt.machine().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(n.field(&Node::v));
    setLabel(state, rt, rt.machine().now() - start);
}
BENCHMARK(BM_FieldLoad)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_PtrStore(benchmark::State &state)
{
    Runtime::Config cfg;
    cfg.version = versionOf(state);
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 1 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    Ptr<Node> a = env.alloc<Node>();
    Ptr<Node> b = env.alloc<Node>();

    const Cycles start = rt.machine().now();
    for (auto _ : state)
        a.setPtrField(&Node::next, b);
    setLabel(state, rt, rt.machine().now() - start);
}
BENCHMARK(BM_PtrStore)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_PtrCompare(benchmark::State &state)
{
    Runtime::Config cfg;
    cfg.version = versionOf(state);
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 1 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    Ptr<Node> a = env.alloc<Node>();
    Ptr<Node> b = env.alloc<Node>();

    const Cycles start = rt.machine().now();
    for (auto _ : state)
        benchmark::DoNotOptimize(a == b);
    setLabel(state, rt, rt.machine().now() - start);
}
BENCHMARK(BM_PtrCompare)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void
BM_PoolAllocFree(benchmark::State &state)
{
    Runtime rt;
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 8 << 20);
    for (auto _ : state) {
        const PtrBits p = rt.pmallocBits(pool, 64);
        rt.pfreeBits(p);
    }
}
BENCHMARK(BM_PoolAllocFree);

void
BM_ListTraverse1k(benchmark::State &state)
{
    Runtime::Config cfg;
    cfg.version = versionOf(state);
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("micro", 8 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);

    Ptr<Node> head = Ptr<Node>::null();
    for (int i = 0; i < 1000; ++i) {
        Ptr<Node> n = env.alloc<Node>();
        n.setField(&Node::v, std::uint64_t(i));
        n.setPtrField(&Node::next, head);
        head = n;
    }

    const Cycles start = rt.machine().now();
    for (auto _ : state) {
        std::uint64_t sum = 0;
        for (Ptr<Node> c = head; !c.isNull();
             c = c.ptrField(&Node::next)) {
            sum += c.field(&Node::v);
        }
        benchmark::DoNotOptimize(sum);
    }
    setLabel(state, rt, rt.machine().now() - start);
}
BENCHMARK(BM_ListTraverse1k)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

} // namespace

BENCHMARK_MAIN();
