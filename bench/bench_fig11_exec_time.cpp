/**
 * @file
 * Figure 11 reproduction: execution time of the HW, SW, and Explicit
 * versions normalized to the Volatile version, for each of the six
 * Table III benchmarks, plus the geometric mean.
 *
 * Paper shapes to check:
 *  - HW is close to Volatile (largest overhead ~12%, on Splay);
 *  - SW is far slower (paper average 2.75x);
 *  - HW beats Explicit by 1-3x thanks to conversion reuse.
 */

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

int
main()
{
    printConfigBanner();
    std::printf("\nFigure 11: execution time normalized to Volatile "
                "(lower is better)\n");
    std::printf("%-6s %10s %10s %10s %10s\n", "bench", "Volatile",
                "HW", "SW", "Explicit");

    std::vector<double> hw_norm, sw_norm, ex_norm, hw_vs_ex;
    for (Workload w : kAllWorkloads) {
        const RunStats vol = run(w, Version::Volatile);
        const RunStats hw = run(w, Version::Hw);
        const RunStats sw = run(w, Version::Sw);
        const RunStats ex = run(w, Version::Explicit);

        // Soundness side-check: all versions computed the same thing.
        if (hw.checksum != vol.checksum ||
            sw.checksum != vol.checksum ||
            ex.checksum != vol.checksum) {
            std::fprintf(stderr, "OUTPUT MISMATCH on %s\n",
                         workloadName(w));
            return 1;
        }

        const double base = static_cast<double>(vol.cycles);
        const double h = static_cast<double>(hw.cycles) / base;
        const double s = static_cast<double>(sw.cycles) / base;
        const double e = static_cast<double>(ex.cycles) / base;
        hw_norm.push_back(h);
        sw_norm.push_back(s);
        ex_norm.push_back(e);
        hw_vs_ex.push_back(e / h);

        std::printf("%-6s %10.3f %10.3f %10.3f %10.3f\n",
                    workloadName(w), 1.0, h, s, e);
    }
    std::printf("%-6s %10.3f %10.3f %10.3f %10.3f\n", "gmean", 1.0,
                geomean(hw_norm), geomean(sw_norm), geomean(ex_norm));

    std::printf("\npaper expectations: HW ~1.0-1.12x, SW avg ~2.75x, "
                "Explicit/HW ~1.33x (ours: %.2fx)\n",
                geomean(hw_vs_ex));
    return 0;
}
