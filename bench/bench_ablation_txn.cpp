/**
 * @file
 * Ablation: the cost of enclosing library calls in persistent
 * transactions (Sec VI). The paper leaves crash consistency to the
 * application's transactions; this bench quantifies what the undo
 * logging adds on top of each version for an insert-heavy workload.
 */

#include <cinttypes>
#include <cstdio>

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

struct Row
{
    Cycles cycles;
    std::uint64_t checksum;
};

Row
runInserts(Version version, bool txn_per_batch)
{
    Runtime::Config cfg;
    cfg.version = version;
    cfg.seed = 0xAB;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("txn", 256 << 20);
    using Tree = RbTree<std::uint64_t, std::uint64_t>;
    Tree tree(MemEnv::persistentEnv(rt, pool));

    const std::uint64_t total = 20'000 / benchScale() + 100;
    const std::uint64_t batch = 50;

    const Cycles start = rt.machine().now();
    for (std::uint64_t base = 0; base < total; base += batch) {
        if (txn_per_batch && version != Version::Volatile)
            rt.beginTxn(pool);
        for (std::uint64_t i = base;
             i < std::min(base + batch, total); ++i) {
            tree.insert(i * 7, i);
        }
        if (txn_per_batch && version != Version::Volatile)
            rt.commitTxn();
    }
    const Cycles cycles = rt.machine().now() - start;

    std::uint64_t sum = 0;
    tree.forEach([&](std::uint64_t k, std::uint64_t v) {
        sum ^= k + v;
    });
    return {cycles, sum};
}

} // namespace

int
main()
{
    printConfigBanner();
    std::printf("\nAblation: undo-log transactions around library "
                "calls (50-insert batches, RB index)\n");
    std::printf("%-10s %14s %14s %10s\n", "version", "no txn",
                "txn/batch", "overhead");

    for (Version v : {Version::Volatile, Version::Hw, Version::Sw,
                      Version::Explicit}) {
        const Row plain = runInserts(v, false);
        const Row txn = runInserts(v, true);
        if (plain.checksum != txn.checksum) {
            std::fprintf(stderr, "OUTPUT MISMATCH under %s\n",
                         versionName(v));
            return 1;
        }
        std::printf("%-10s %14" PRIu64 " %14" PRIu64 " %+9.1f%%\n",
                    versionName(v), plain.cycles, txn.cycles,
                    100.0 * (static_cast<double>(txn.cycles) /
                                 static_cast<double>(plain.cycles) -
                             1.0));
    }
    std::printf("\n(transactions are a Volatile no-op; the logging "
                "cost applies equally to the NVM versions, so the\n"
                "HW-vs-SW-vs-Explicit ordering of Fig 11 is "
                "unchanged by crash consistency)\n");
    return 0;
}
