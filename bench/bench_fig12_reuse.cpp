/**
 * @file
 * Figure 12 mechanism + ablation: why the HW version of
 * user-transparent references beats explicit persistent references.
 *
 * The codelet is the paper's: repeated accesses through the same
 * persistent pointer. Under user transparency, the first access's
 * ra2va result lands in a normal pointer (register/temporary) and is
 * reused; the explicit API re-translates every access. The ablation
 * disables HW conversion reuse, which should collapse HW to
 * Explicit-like behaviour.
 */

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

struct Record
{
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::uint64_t d = 0;
};

/** The Fig 12 codelet: many field accesses via the same pointers. */
RunStats
codelet(Version version, bool reuse)
{
    Runtime::Config cfg;
    cfg.version = version;
    cfg.hwConversionReuse = reuse;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("fig12", 64 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);

    // An array of persistent records, each visited with 8 field
    // accesses through one pointer (reuse opportunity = 8).
    const std::uint64_t n = 20'000 / upr::bench::benchScale() + 64;
    Ptr<Record> recs = env.allocArray<Record>(n);
    const Cycles start = rt.machine().now();
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        Ptr<Record> r = recs + static_cast<std::ptrdiff_t>(i);
        r.setField(&Record::a, i);
        r.setField(&Record::b, i * 2);
        r.setField(&Record::c, i * 3);
        r.setField(&Record::d, i * 5);
        sum += r.field(&Record::a) + r.field(&Record::b) +
               r.field(&Record::c) + r.field(&Record::d);
    }
    RunStats st;
    st.cycles = rt.machine().now() - start;
    st.checksum = sum;
    st.relToAbs = rt.relToAbs();
    st.polbAccesses = rt.machine().polb().accesses();
    st.memAccesses = rt.machine().memAccesses();
    return st;
}

} // namespace

int
main()
{
    printConfigBanner();
    std::printf("\nFigure 12 mechanism: conversion reuse on a "
                "field-access codelet\n");
    std::printf("%-26s %12s %14s %14s\n", "version", "cycles",
                "rel->abs", "POLB accesses");

    const RunStats vol = codelet(Version::Volatile, true);
    const RunStats hw = codelet(Version::Hw, true);
    const RunStats hw_nr = codelet(Version::Hw, false);
    const RunStats ex = codelet(Version::Explicit, true);

    std::printf("%-26s %12" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
                "Volatile", vol.cycles, vol.relToAbs,
                vol.polbAccesses);
    std::printf("%-26s %12" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
                "HW (reuse, default)", hw.cycles, hw.relToAbs,
                hw.polbAccesses);
    std::printf("%-26s %12" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
                "HW (reuse disabled)", hw_nr.cycles, hw_nr.relToAbs,
                hw_nr.polbAccesses);
    std::printf("%-26s %12" PRIu64 " %14" PRIu64 " %14" PRIu64 "\n",
                "Explicit", ex.cycles, ex.relToAbs, ex.polbAccesses);

    if (hw.checksum != vol.checksum || ex.checksum != vol.checksum) {
        std::fprintf(stderr, "OUTPUT MISMATCH\n");
        return 1;
    }

    std::printf("\nExplicit/HW cycle ratio: %.2fx (paper: HW wins "
                "1-3x)\n",
                static_cast<double>(ex.cycles) /
                    static_cast<double>(hw.cycles));
    std::printf("ablation: disabling reuse costs HW %.2fx and "
                "multiplies its translations by %.1fx\n",
                static_cast<double>(hw_nr.cycles) /
                    static_cast<double>(hw.cycles),
                static_cast<double>(hw_nr.relToAbs) /
                    static_cast<double>(std::max<std::uint64_t>(
                        hw.relToAbs, 1)));
    return 0;
}
