/**
 * @file
 * Execution-tier IR workloads and runner glue, shared by the bench
 * harness (`--exec-only`, BENCH_exec.json) and the exec-tier tests
 * so both drive exactly the same programs with the same check plans.
 *
 * Each workload compiles once (parse, open-world inference, flow
 * analysis, check insertion, elision) and then runs through the
 * FastExecutor in a chosen tier on a fresh SW runtime. The contract
 * across tiers — and against the Interpreter — is byte-identical
 * results, instruction counts and dynamicCheckCount().
 */

#ifndef UPR_BENCH_BENCH_IR_HH
#define UPR_BENCH_BENCH_IR_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "compiler/analysis/abstract_interp.hh"
#include "compiler/analysis/elision.hh"
#include "compiler/demo_programs.hh"
#include "compiler/exec_fast.hh"
#include "compiler/exec_lower.hh"
#include "compiler/ir_parser.hh"
#include "compiler/type_inference.hh"
#include "core/runtime.hh"

namespace upr::bench
{

/** One compiler-path workload of the exec grid. */
struct ExecWorkload
{
    const char *name;
    const char *source;
    std::vector<std::uint64_t> args;
};

/**
 * The exec grid's workloads, sized for @p scale (1 = full,
 * bench --quick passes 100). fig9 mixes proved and dynamic sites,
 * ptr_chase keeps its chase guards (loaded pointers are Unknown),
 * sweep is fully static — the unchecked Native fast path — and
 * publish is storep-dense, where the tier gap is widest.
 */
inline std::vector<ExecWorkload>
execWorkloads(std::uint64_t scale)
{
    const auto shrink = [scale](std::uint64_t n) {
        return std::max<std::uint64_t>(1, n / scale);
    };
    return {
        {"fig9", ir::kFig9Source, {shrink(20'000)}},
        {"ptr_chase", ir::kPtrChaseSource, {256, shrink(8'192)}},
        {"sweep", ir::kSweepSource, {shrink(200'000)}},
        {"publish", ir::kPublishSource, {shrink(200'000)}},
        {"stream", ir::kStreamSource, {shrink(16)}},
        {"scan", ir::kScanSource, {shrink(60'000)}},
        {"conflict", ir::kConflictSource, {shrink(20'000)}},
    };
}

/** A workload compiled to its final (elided) check plan. */
struct ExecProgram
{
    ir::Module mod;
    CheckPlan plan;
    std::uint64_t elidedSites = 0;
};

inline ExecProgram
compileExecProgram(const char *source)
{
    ExecProgram p;
    p.mod = ir::parseModule(source);
    const InferenceResult inf = inferPointerKinds(p.mod, true);
    FlowAnalysis flow(p.mod, inf);
    p.plan = insertChecks(p.mod, &inf);
    p.elidedSites = elideChecks(p.mod, flow, p.plan).elidedSites;
    return p;
}

/** One tier's run of one workload. */
struct ExecRun
{
    std::uint64_t result = 0;
    std::uint64_t instructions = 0;
    std::uint64_t dynamicChecks = 0;
    LowerStats lowered;
};

/**
 * Lower @p p for a fresh SW runtime and run @main through the
 * FastExecutor at @p tier.
 */
inline ExecRun
runExecTier(const ExecProgram &p, ExecTier tier,
            const std::vector<std::uint64_t> &args)
{
    Runtime::Config cfg;
    cfg.version = Version::Sw;
    cfg.seed = 0xB0;
    cfg.execTier = tier;
    Runtime rt(cfg);

    const LoweredModule lm = lowerModule(p.mod, p.plan, rt.version());
    FastExecutor::Config xcfg;
    xcfg.pool = rt.createPool("exec", 32 << 20);
    xcfg.tier = tier;
    FastExecutor ex(rt, lm, xcfg);

    ExecRun r;
    r.result = ex.call("main", args);
    r.instructions = ex.instructionCount();
    r.dynamicChecks = ex.dynamicCheckCount();
    r.lowered = lm.stats;
    return r;
}

} // namespace upr::bench

#endif // UPR_BENCH_BENCH_IR_HH
