/**
 * @file
 * Ablation: the MMU-front probe delay and the non-PMO bypass
 * predictor — implementing and evaluating the paper's future-work
 * sentence ("predict non-PMO accesses that bypass the POLB/VALB").
 *
 * Three design points per benchmark, HW version:
 *   none      — probe delay not charged (the paper's simulations
 *               model a small delay; ours defaults it off)
 *   always    — every access pays the 1-cycle POLB/VALB probe
 *   predicted — the bypass predictor skips it for non-PMO accesses
 */

#include <cinttypes>
#include <cstdio>

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

RunStats
runWithFront(Workload w, MmuFrontModel model)
{
    // Mirror bench_common's run() but with the front model set.
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 0xB0;
    cfg.mmuFront = model;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("bench", 512 << 20);

    if (w == Workload::LL) {
        struct Value16
        {
            std::uint64_t lo = 0;
            std::uint64_t hi = 0;
        };
        LinkedList<Value16> list(MemEnv::persistentEnv(rt, pool));
        Rng rng(7);
        for (std::uint64_t i = 0; i < 10'000 / benchScale(); ++i)
            list.pushBack({rng.next(), rng.next()});
        rt.machine().resetAllStats();
        rt.resetCounters();
        const Cycles start = rt.machine().now();
        std::uint64_t sum = 0;
        list.forEach([&](const Value16 &v) { sum += v.lo + v.hi; });
        RunStats st;
        st.cycles = rt.machine().now() - start;
        st.checksum = sum;
        return st;
    }

    const YcsbWorkload workload(paperSpec());
    KvStore<RbTree<std::uint64_t, std::uint64_t>> store(
        MemEnv::persistentEnv(rt, pool));
    store.loadPhase(workload);
    rt.machine().resetAllStats();
    rt.resetCounters();
    const KvRunResult res = store.runPhase(workload);
    RunStats st;
    st.cycles = res.cycles;
    st.checksum = res.checksum;
    st.memAccesses = rt.machine().memAccesses();
    return st;
}

/**
 * Mixed traffic: a persistent KV store plus an equally hot volatile
 * cache in front of it (a realistic app shape) — about half the
 * accesses are non-PMO and can bypass.
 */
RunStats
runMixed(MmuFrontModel model)
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    cfg.seed = 0xB0;
    cfg.mmuFront = model;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("bench", 256 << 20);

    using Tree = RbTree<std::uint64_t, std::uint64_t>;
    Tree pers(MemEnv::persistentEnv(rt, pool));
    Tree cache(MemEnv::volatileEnv(rt));
    const std::uint64_t n = 10'000 / benchScale() + 100;
    for (std::uint64_t i = 0; i < n; ++i)
        pers.insert(i, i * 3);

    rt.machine().resetAllStats();
    rt.resetCounters();
    const Cycles start = rt.machine().now();
    std::uint64_t sum = 0;
    Rng rng(5);
    for (std::uint64_t op = 0; op < 4 * n; ++op) {
        const std::uint64_t k = rng.nextBounded(n);
        if (auto hit = cache.find(k)) {
            sum += *hit;
            continue;
        }
        const std::uint64_t v = pers.find(k).value();
        cache.insert(k, v);
        sum += v;
    }
    RunStats st;
    st.cycles = rt.machine().now() - start;
    st.checksum = sum;
    return st;
}

} // namespace

int
main()
{
    printConfigBanner();
    std::printf("\nAblation: MMU-front probe delay + non-PMO bypass "
                "prediction (HW version)\n");
    std::printf("%-6s %14s %14s %14s %16s\n", "bench", "none",
                "always", "predicted", "recovered");

    auto emitRow = [](const char *name, const RunStats &none,
                      const RunStats &always, const RunStats &pred) {
        const double added = static_cast<double>(always.cycles) -
                             static_cast<double>(none.cycles);
        const double recovered =
            added <= 0 ? 0.0
                       : 100.0 * (static_cast<double>(always.cycles) -
                                  static_cast<double>(pred.cycles)) /
                             added;
        std::printf("%-8s %14" PRIu64 " %14" PRIu64 " %14" PRIu64
                    " %15.1f%%\n",
                    name, none.cycles, always.cycles, pred.cycles,
                    recovered);
    };

    for (Workload w : {Workload::LL, Workload::RB}) {
        const RunStats none = runWithFront(w, MmuFrontModel::None);
        const RunStats always =
            runWithFront(w, MmuFrontModel::Always);
        const RunStats pred =
            runWithFront(w, MmuFrontModel::Predicted);

        if (none.checksum != always.checksum ||
            none.checksum != pred.checksum) {
            std::fprintf(stderr, "OUTPUT MISMATCH\n");
            return 1;
        }

        emitRow(workloadName(w), none, always, pred);
    }
    {
        const RunStats none = runMixed(MmuFrontModel::None);
        const RunStats always = runMixed(MmuFrontModel::Always);
        const RunStats pred = runMixed(MmuFrontModel::Predicted);
        if (none.checksum != always.checksum ||
            none.checksum != pred.checksum) {
            std::fprintf(stderr, "OUTPUT MISMATCH (mixed)\n");
            return 1;
        }
        emitRow("mixed", none, always, pred);
    }
    std::printf("\ntakeaway: prediction recovers most of the probe "
                "delay for mixed workloads; a persistent-only "
                "workload cannot bypass (every access IS a PMO "
                "access), bounding the benefit.\n");
    return 0;
}
