/**
 * @file
 * Table V reproduction: per benchmark, the number of dynamic checks
 * executed (SW version) and the numbers of absolute-to-relative and
 * relative-to-absolute conversions.
 */

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

int
main()
{
    printConfigBanner();
    std::printf("\nTable V: dynamic checks and conversions per "
                "benchmark (SW version)\n");
    std::printf("%-6s %16s %16s %16s\n", "bench", "dynamic checks",
                "abs. to rel.", "rel. to abs.");

    for (Workload w : kAllWorkloads) {
        const RunStats sw = run(w, Version::Sw);
        std::printf("%-6s %16" PRIu64 " %16" PRIu64 " %16" PRIu64 "\n",
                    workloadName(w), sw.dynamicChecks, sw.absToRel,
                    sw.relToAbs);
    }

    std::printf("\n(HW version conversion traffic, showing the "
                "reuse effect of Fig 12)\n");
    std::printf("%-6s %16s %16s\n", "bench", "abs. to rel.",
                "rel. to abs.");
    for (Workload w : kAllWorkloads) {
        const RunStats hw = run(w, Version::Hw);
        std::printf("%-6s %16" PRIu64 " %16" PRIu64 "\n",
                    workloadName(w), hw.absToRel, hw.relToAbs);
    }
    return 0;
}
