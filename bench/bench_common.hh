/**
 * @file
 * Shared benchmark machinery: the paper's two harnesses (the YCSB
 * key-value store harness for Hash/RB/Splay/AVL/SG and the separate
 * traversal harness for LL, Sec VII-A), run under any version with
 * any machine configuration, returning cycle counts and every
 * counter the paper's tables/figures report.
 *
 * Workload sizes default to the paper's (10,000 records / 100,000
 * operations; 10,000 LL nodes). Set UPR_BENCH_SCALE=<divisor> to
 * shrink them for quick runs.
 */

#ifndef UPR_BENCH_BENCH_COMMON_HH
#define UPR_BENCH_BENCH_COMMON_HH

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "containers/linked_list.hh"
#include "kvstore/kv_store.hh"
#include "obs/histogram.hh"

namespace upr::bench
{

/** The six benchmarks of Table III. */
enum class Workload
{
    LL,
    Hash,
    RB,
    Splay,
    AVL,
    SG,
};

inline const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::LL:    return "LL";
      case Workload::Hash:  return "Hash";
      case Workload::RB:    return "RB";
      case Workload::Splay: return "Splay";
      case Workload::AVL:   return "AVL";
      case Workload::SG:    return "SG";
    }
    return "?";
}

inline const Workload kAllWorkloads[] = {
    Workload::LL,  Workload::Hash, Workload::RB,
    Workload::Splay, Workload::AVL, Workload::SG,
};

/**
 * POD percentile summary of one latency histogram. Cells run in
 * forked children and ship results over a pipe as fixed-size records,
 * so this must stay trivially copyable.
 */
struct HistSummary
{
    std::uint64_t count = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
};

/** Summarize a histogram into its pipe-safe POD form. */
inline HistSummary
summarize(const obs::LatencyHistogram &h)
{
    HistSummary s;
    const obs::HistogramData &d = h.data();
    s.count = d.count;
    s.p50 = d.percentile(50);
    s.p90 = d.percentile(90);
    s.p99 = d.percentile(99);
    s.max = d.max;
    return s;
}

/** Everything a figure/table might need from one run. */
struct RunStats
{
    Cycles cycles = 0;
    std::uint64_t checksum = 0;

    std::uint64_t memAccesses = 0;
    std::uint64_t storePs = 0;
    std::uint64_t polbAccesses = 0;
    std::uint64_t polbWalks = 0;
    std::uint64_t valbAccesses = 0;
    std::uint64_t valbWalks = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMisses = 0;

    std::uint64_t dynamicChecks = 0;
    std::uint64_t absToRel = 0;
    std::uint64_t relToAbs = 0;
    std::uint64_t reuseHits = 0;

    /**
     * Latency histograms of the run's measured phase, simulated
     * cycles per operation — deterministic like the counters above,
     * so goldens can assert on them.
     */
    HistSummary checkCycles = {};
    HistSummary ptrAssignCycles = {};
};

/** Workload scaling divisor from UPR_BENCH_SCALE (default 1). */
inline std::uint64_t
benchScale()
{
    if (const char *s = std::getenv("UPR_BENCH_SCALE")) {
        const long v = std::atol(s);
        if (v >= 1)
            return static_cast<std::uint64_t>(v);
    }
    return 1;
}

/** The paper's KV workload spec, scaled. */
inline WorkloadSpec
paperSpec()
{
    WorkloadSpec spec;
    spec.recordCount = 10'000 / benchScale();
    spec.operationCount = 100'000 / benchScale();
    return spec;
}

namespace detail
{

/** Snapshot all counters after the timed phase. */
inline RunStats
snapshot(Runtime &rt, Cycles cycles, std::uint64_t checksum)
{
    RunStats st;
    st.cycles = cycles;
    st.checksum = checksum;
    Machine &m = rt.machine();
    st.memAccesses = m.memAccesses();
    st.storePs = m.storePCount();
    st.polbAccesses = m.polb().accesses();
    st.polbWalks = m.polb().walkCount();
    st.valbAccesses = m.valb().accesses();
    st.valbWalks = m.valb().walkCount();
    st.branches = m.bpred().branches();
    st.branchMisses = m.bpred().mispredicts();
    st.dynamicChecks = rt.dynamicChecks();
    st.absToRel = rt.absToRel();
    st.relToAbs = rt.relToAbs();
    st.reuseHits = rt.reuseHits();
    st.checkCycles = summarize(rt.checkHistogram());
    st.ptrAssignCycles = summarize(rt.ptrAssignHistogram());
    return st;
}

/** KV-harness run over one index type. */
template <typename Index>
RunStats
runKvIndex(Version version, const MachineParams &params,
           const YcsbWorkload &workload)
{
    Runtime::Config cfg;
    cfg.version = version;
    cfg.machine = params;
    cfg.seed = 0xB0;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("bench", 512 << 20);

    KvStore<Index> store(MemEnv::persistentEnv(rt, pool));
    store.loadPhase(workload);
    // The paper's measurements cover the operation phase; counters
    // reset here while the microarchitectural state stays warm.
    rt.machine().resetAllStats();
    rt.resetCounters();
    const KvRunResult res = store.runPhase(workload);
    return snapshot(rt, res.cycles, res.checksum);
}

} // namespace detail

/**
 * The separate LL harness (Sec VII-A): build node_count nodes, each
 * holding two pointers and a 16-byte value, then iterate the list
 * accumulating the values (the timed phase).
 */
inline RunStats
runLinkedList(Version version, const MachineParams &params,
              std::uint64_t node_count)
{
    struct Value16
    {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
    };

    Runtime::Config cfg;
    cfg.version = version;
    cfg.machine = params;
    cfg.seed = 0xB0;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("bench", 512 << 20);

    LinkedList<Value16> list(MemEnv::persistentEnv(rt, pool));
    Rng rng(7);
    for (std::uint64_t i = 0; i < node_count; ++i)
        list.pushBack({rng.next(), rng.next()});

    rt.machine().resetAllStats();
    rt.resetCounters();
    const Cycles start = rt.machine().now();
    std::uint64_t sum = 0;
    list.forEach([&](const Value16 &v) { sum += v.lo + v.hi; });
    return detail::snapshot(rt, rt.machine().now() - start, sum);
}

/** Run one (workload, version) pair with @p params. */
inline RunStats
run(Workload w, Version version, const MachineParams &params = {})
{
    if (w == Workload::LL)
        return runLinkedList(version, params, 10'000 / benchScale());

    const YcsbWorkload workload(paperSpec());
    using K = std::uint64_t;
    using V = std::uint64_t;
    switch (w) {
      case Workload::Hash:
        return detail::runKvIndex<HashMap<K, V>>(version, params,
                                                 workload);
      case Workload::RB:
        return detail::runKvIndex<RbTree<K, V>>(version, params,
                                                workload);
      case Workload::Splay:
        return detail::runKvIndex<SplayTree<K, V>>(version, params,
                                                   workload);
      case Workload::AVL:
        return detail::runKvIndex<AvlTree<K, V>>(version, params,
                                                 workload);
      case Workload::SG:
        return detail::runKvIndex<ScapegoatTree<K, V>>(version, params,
                                                       workload);
      default:
        upr_panic("bad workload");
    }
}

/** Geometric mean. */
inline double
geomean(const std::vector<double> &xs)
{
    double acc = 0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Print the Table IV machine-configuration banner. */
inline void
printConfigBanner(const MachineParams &p = {})
{
    std::printf("# machine (paper Table IV): 1 core %.2f GHz, "
                "L1 %llu KiB/%u-way/%" PRIu64 "c, "
                "L2 %llu KiB/%" PRIu64 "c, L3 %llu MiB/%" PRIu64 "c, "
                "DRAM %" PRIu64 "c, NVM %" PRIu64 "c, "
                "POLB %u@%" PRIu64 "c (walk %" PRIu64 "c), "
                "VALB %u@%" PRIu64 "c (walk %" PRIu64 "c)\n",
                p.coreGhz, (unsigned long long)(p.l1Size / 1024),
                p.l1Ways, p.l1Latency,
                (unsigned long long)(p.l2Size / 1024), p.l2Latency,
                (unsigned long long)(p.l3Size / (1024 * 1024)),
                p.l3Latency, p.dramLatency, p.nvmLatency,
                p.polbEntries, p.polbHitLatency, p.powLatency,
                p.valbEntries, p.valbHitLatency, p.vawLatency);
    if (benchScale() != 1) {
        std::printf("# NOTE: workloads scaled down by %" PRIu64
                    "x (UPR_BENCH_SCALE)\n", benchScale());
    }
}

} // namespace upr::bench

#endif // UPR_BENCH_BENCH_COMMON_HH
