/**
 * @file
 * Figure 15 reproduction: of all memory-access instructions in the
 * HW version, what fraction are storeP, what fraction access the
 * VALB/VAW, and what fraction access the POLB/POW.
 *
 * Paper numbers: 0.38% storeP, 0.22% VALB/VAW, 12.6% POLB/POW —
 * the reason VALB latency barely matters (Fig 14) while POLB sits on
 * the load path.
 */

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

int
main()
{
    printConfigBanner();
    std::printf("\nFigure 15: share of memory accesses touching each "
                "UPR structure (HW version)\n");
    std::printf("%-6s %14s %12s %12s %12s\n", "bench", "mem accesses",
                "storeP %", "VALB %", "POLB %");

    double sp_sum = 0, va_sum = 0, po_sum = 0;
    int n = 0;
    for (Workload w : kAllWorkloads) {
        const RunStats hw = run(w, Version::Hw);
        const double total = static_cast<double>(hw.memAccesses);
        const double sp = 100.0 * hw.storePs / total;
        const double va = 100.0 * hw.valbAccesses / total;
        const double po = 100.0 * hw.polbAccesses / total;
        sp_sum += sp;
        va_sum += va;
        po_sum += po;
        ++n;
        std::printf("%-6s %14" PRIu64 " %11.3f%% %11.3f%% %11.3f%%\n",
                    workloadName(w), hw.memAccesses, sp, va, po);
    }
    std::printf("%-6s %14s %11.3f%% %11.3f%% %11.3f%%\n", "mean", "",
                sp_sum / n, va_sum / n, po_sum / n);
    std::printf("\npaper: 0.38%% storeP, 0.22%% VALB/VAW, 12.6%% "
                "POLB/POW\n");
    return 0;
}
