/**
 * @file
 * Figure 14 reproduction: sensitivity of the HW version to the VALB
 * and VAW latency, reported as execution time normalized to the
 * Explicit version (as in the paper).
 *
 * Paper expectation: even at 50 cycles per VALB/VAW access, every
 * benchmark slows by less than 10% — the storeP unit's FSM buffer
 * hides the latency off the critical path, and storePs are rare
 * (Fig 15).
 */

#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

int
main()
{
    printConfigBanner();
    const Cycles lats[] = {1, 5, 10, 20, 30, 50};

    std::printf("\nFigure 14: HW execution time vs VALB/VAW latency, "
                "normalized to Explicit\n");
    std::printf("%-6s", "bench");
    for (Cycles l : lats)
        std::printf(" %7" PRIu64 "c", l);
    std::printf("  rise@50c\n");

    for (Workload w : kAllWorkloads) {
        const RunStats ex = run(w, Version::Explicit);
        std::printf("%-6s", workloadName(w));
        double first = 0, last = 0;
        for (Cycles l : lats) {
            MachineParams p;
            p.valbHitLatency = l;
            p.vawLatency = l;
            const RunStats hw = run(w, Version::Hw, p);
            const double norm = static_cast<double>(hw.cycles) /
                                static_cast<double>(ex.cycles);
            if (l == lats[0])
                first = static_cast<double>(hw.cycles);
            last = static_cast<double>(hw.cycles);
            std::printf(" %8.3f", norm);
        }
        std::printf("  %+6.2f%%\n", 100.0 * (last / first - 1.0));
    }
    std::printf("\npaper expectation: <10%% execution-time increase "
                "even at 50-cycle VALB/VAW latency\n");
    return 0;
}
