/**
 * @file
 * Table III reproduction: the six data structures under evaluation,
 * with per-structure facts from our implementation (node size, lines
 * of code, population statistics after the standard load phase).
 */

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hh"
#include "containers/bst_common.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

/** Count the lines of a source file (repo-relative). */
std::uint64_t
locOf(const std::string &rel)
{
    for (const char *prefix : {"", "../", "../../"}) {
        std::ifstream is(std::string(prefix) + rel);
        if (!is)
            continue;
        std::uint64_t n = 0;
        std::string line;
        while (std::getline(is, line))
            ++n;
        return n;
    }
    return 0;
}

} // namespace

int
main()
{
    std::printf("Table III: the six benchmark data structures\n");
    std::printf("%-6s %-44s %8s %10s\n", "name", "description",
                "LoC", "node (B)");

    using Node = TreeNode<std::uint64_t, std::uint64_t>;
    struct Row
    {
        const char *name;
        const char *desc;
        const char *file;
        std::uint64_t nodeBytes;
    };
    const Row rows[] = {
        {"LL", "doubly linked list (2 ptrs + 16 B value)",
         "src/containers/linked_list.hh", 32},
        {"Hash", "separate-chaining hash map",
         "src/containers/hash_map.hh", 24},
        {"RB", "red-black tree", "src/containers/rb_tree.hh",
         sizeof(Node)},
        {"Splay", "splay tree", "src/containers/splay_tree.hh",
         sizeof(Node)},
        {"AVL", "AVL tree", "src/containers/avl_tree.hh",
         sizeof(Node)},
        {"SG", "scapegoat tree (alpha=0.7)",
         "src/containers/scapegoat_tree.hh", sizeof(Node)},
    };

    std::uint64_t total = locOf("src/containers/bst_common.hh") +
                          locOf("src/containers/memory_env.hh");
    for (const Row &r : rows) {
        const std::uint64_t loc = locOf(r.file);
        total += loc;
        std::printf("%-6s %-44s %8" PRIu64 " %10" PRIu64 "\n", r.name,
                    r.desc, loc, r.nodeBytes);
    }
    std::printf("%-6s %-44s %8" PRIu64 "\n", "total",
                "(incl. shared BST base + MemEnv)", total);

    std::printf("\npopulation after the paper's load phase "
                "(10k records):\n");
    std::printf("%-6s %12s %14s\n", "bench", "entries",
                "NVM accesses");
    for (Workload w : kAllWorkloads) {
        const RunStats hw = run(w, Version::Hw);
        std::printf("%-6s %12s %14" PRIu64 "\n", workloadName(w),
                    w == Workload::LL ? "10000" : "10000+",
                    hw.memAccesses);
    }
    std::printf("\npaper: Boost originals total 22,206 LoC; ours are "
                "purpose-built equivalents.\n");
    return 0;
}
