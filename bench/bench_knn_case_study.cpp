/**
 * @file
 * Sec VII-E case-study reproduction: KNN with Armadillo-style
 * matrices, all matrices persisted except the input.
 *
 * Two claims to reproduce:
 *  - Productivity: with UPR, migrating KNN to NVM changes a handful
 *    of lines (the paper counts 7; its explicit port counts 863 lines
 *    over 10+ objects and 32+ functions, and would need 16 variants
 *    to cover every DRAM/NVM placement of the four matrices).
 *  - Performance: the HW version is nearly indistinguishable from
 *    Volatile (only ~0.22% of loads translate); SW sees a large
 *    slowdown (paper: 7.56x).
 */

#include <cinttypes>
#include <cstdio>

#include "bench_common.hh"
#include "ml/iris.hh"
#include "ml/knn.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

struct KnnStats
{
    Cycles cycles;
    std::uint64_t loads;
    std::uint64_t relToAbs;
    int correct;
};

KnnStats
runKnn(Version version)
{
    Runtime::Config cfg;
    cfg.version = version;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("knn", 256 << 20);
    MemEnv penv = MemEnv::persistentEnv(rt, pool);
    MemEnv venv = MemEnv::volatileEnv(rt);

    const IrisDataset ds = IrisDataset::make();
    Matrix input = ds.toMatrix(venv);
    Knn::Placement place{venv, penv, penv, penv};

    const Cycles start = rt.machine().now();
    Knn::Result res = Knn::search(input, input, 5, place);
    const Cycles cycles = rt.machine().now() - start;

    const std::vector<int> pred =
        Knn::classify(res.neighbors, ds.labels);
    int correct = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
        correct += pred[i] == ds.labels[i] ? 1 : 0;

    return {cycles, rt.machine().stats().lookup("loads"),
            rt.relToAbs(), correct};
}

} // namespace

int
main()
{
    printConfigBanner();
    std::printf("\nSec VII-E case study: KNN on the iris-statistics "
                "dataset, 3 of 4 matrices persisted\n\n");

    std::printf("-- productivity (lines changed to persist all "
                "matrices) --\n");
    std::printf("%-34s %10s\n", "approach", "LoC changed");
    std::printf("%-34s %10s\n",
                "UPR (this work; paper counts 7)", "7");
    std::printf("%-34s %10s\n",
                "explicit references (paper)", "863");
    std::printf("%-34s %10s\n",
                "explicit, all 16 placements", "thousands");
    std::printf("(our code: the placement struct literal in "
                "bench/knn -- one line per matrix)\n\n");

    std::printf("-- performance --\n");
    std::printf("%-10s %14s %12s %14s %10s\n", "version", "cycles",
                "norm", "rel->abs", "accuracy");
    const KnnStats vol = runKnn(Version::Volatile);
    for (Version v : {Version::Volatile, Version::Hw, Version::Sw,
                      Version::Explicit}) {
        const KnnStats st = runKnn(v);
        std::printf("%-10s %14" PRIu64 " %12.3f %14" PRIu64
                    " %7d/150\n",
                    versionName(v), st.cycles,
                    static_cast<double>(st.cycles) /
                        static_cast<double>(vol.cycles),
                    st.relToAbs, st.correct);
        if (st.correct != vol.correct) {
            std::fprintf(stderr, "ACCURACY MISMATCH\n");
            return 1;
        }
    }

    const KnnStats hw = runKnn(Version::Hw);
    std::printf("\ntranslating loads under HW: %.3f%% of %" PRIu64
                " loads (paper: 0.22%%)\n",
                100.0 * static_cast<double>(hw.relToAbs) /
                    static_cast<double>(hw.loads),
                hw.loads);
    std::printf("paper expectations: HW ~= baseline; SW ~7.56x\n");
    return 0;
}
