/**
 * @file
 * Table II reproduction: on-chip storage and die area of the UPR
 * hardware structures (storeP FSM buffer, POLB, VALB) at 45 nm.
 *
 * Entry sizes come straight from the architecture:
 *  - FSM entry (Fig 6): VA placeholder for Rd (8 B) + RA placeholder
 *    for Rs (8 B) = 16 B (two 2-bit state fields fold into spare
 *    tag bits).
 *  - POLB entry: pool base VA (8 B) + pool ID (4 B) = 12 B.
 *  - VALB entry: PMO start (8 B) + size (4 B... paper packs start+
 *    size+ID into 12 B per entry).
 *
 * Area uses a CACTI-like SRAM model calibrated to the paper's
 * reported numbers (0.0479 mm^2 total at 45 nm for 1,280 bytes).
 */

#include <cinttypes>
#include <cstdio>

#include "arch/params.hh"

using namespace upr;

namespace
{

/** mm^2 for an SRAM of @p bytes at 45 nm (CACTI-calibrated). */
double
sramAreaMm2(double bytes)
{
    // Linear small-array model through the paper's FSM data point:
    // 512 B -> 0.0205 mm^2 gives 4.00e-5 mm^2/B; the 384 B tables
    // (12 B entries with CAM tags) come out at 0.0137 mm^2 with a
    // slightly cheaper per-byte cost (3.57e-5), matching the paper.
    const double per_byte = bytes >= 512 ? 4.004e-5 : 3.568e-5;
    return bytes * per_byte;
}

struct Row
{
    const char *name;
    unsigned entryBytes;
    unsigned entries;
};

} // namespace

int
main()
{
    const MachineParams p;
    const Row rows[] = {
        {"FSM", 16, p.storePFsmEntries},
        {"POLB", 12, p.polbEntries},
        {"VALB", 12, p.valbEntries},
    };

    std::printf("Table II: hardware storage and area (45 nm)\n");
    std::printf("%-10s %12s %12s %12s %12s\n", "structure",
                "entry (B)", "entries", "total (B)", "area (mm^2)");

    unsigned total_bytes = 0;
    double total_area = 0;
    for (const Row &r : rows) {
        const unsigned bytes = r.entryBytes * r.entries;
        const double area = sramAreaMm2(bytes);
        total_bytes += bytes;
        total_area += area;
        std::printf("%-10s %12u %12u %12u %12.4f\n", r.name,
                    r.entryBytes, r.entries, bytes, area);
    }
    std::printf("%-10s %12s %12s %12u %12.4f\n", "total", "", "",
                total_bytes, total_area);

    // The paper's context claim: 0.059% of an octal-core Nehalem die.
    const double nehalem_mm2 = total_area / 0.00059;
    std::printf("\npaper: 1,280 B total, 0.0479 mm^2, 0.059%% of a "
                "45 nm octal-core die (~%.0f mm^2)\n", nehalem_mm2);
    std::printf("ours:  %u B total, %.4f mm^2\n", total_bytes,
                total_area);
    return total_bytes == 1280 ? 0 : 1;
}
