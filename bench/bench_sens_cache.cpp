/**
 * @file
 * Cache-geometry sensitivity via trace replay (Sniper-trace-mode
 * style): the RB workload is recorded once per version, then
 * re-simulated across cache configurations — dozens of design points
 * from a single workload execution.
 *
 * The question it answers for the paper's design: does the HW
 * version's near-zero overhead depend on generous caches? (It should
 * not — translations are the overhead, and they are served by the
 * POLB, not the data caches.)
 */

#include <cinttypes>
#include <cstdio>

#include "arch/trace.hh"
#include "bench_common.hh"

using namespace upr;
using namespace upr::bench;

namespace
{

/** Record the standard RB KV run-phase under @p version. */
Trace
recordRb(Version version)
{
    Runtime::Config cfg;
    cfg.version = version;
    cfg.seed = 0xB0;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("bench", 512 << 20);

    const YcsbWorkload workload(paperSpec());
    KvStore<RbTree<std::uint64_t, std::uint64_t>> store(
        MemEnv::persistentEnv(rt, pool));
    store.loadPhase(workload);

    Trace trace;
    rt.machine().setTrace(&trace);
    store.runPhase(workload);
    rt.machine().setTrace(nullptr);
    return trace;
}

struct Config
{
    const char *name;
    Bytes l1, l2, l3;
};

} // namespace

int
main()
{
    printConfigBanner();
    const Config configs[] = {
        {"tiny   (8K/64K/512K)", 8 << 10, 64 << 10, 512 << 10},
        {"paper  (32K/256K/2M)", 32 << 10, 256 << 10, 2 << 20},
        {"big    (64K/1M/8M)", 64 << 10, 1 << 20, 8 << 20},
        {"huge   (128K/4M/32M)", 128 << 10, 4 << 20, 32 << 20},
    };

    std::printf("\nCache sensitivity via trace replay (RB, run "
                "phase): HW/Volatile cycle ratio per geometry\n");
    std::printf("%-24s %12s %12s %10s %12s\n", "cache config",
                "Volatile", "HW", "HW/Vol", "HW L1-miss%");

    const Trace vol_trace = recordRb(Version::Volatile);
    const Trace hw_trace = recordRb(Version::Hw);
    std::printf("# traces: %zu events (Volatile), %zu events (HW)\n",
                vol_trace.size(), hw_trace.size());

    for (const Config &c : configs) {
        MachineParams p;
        p.l1Size = c.l1;
        p.l2Size = c.l2;
        p.l3Size = c.l3;
        const ReplayResult vol = replayTrace(vol_trace, p);
        const ReplayResult hw = replayTrace(hw_trace, p);
        std::printf("%-24s %12" PRIu64 " %12" PRIu64 " %10.3f %11.2f%%\n",
                    c.name, vol.cycles, hw.cycles,
                    static_cast<double>(hw.cycles) /
                        static_cast<double>(vol.cycles),
                    100.0 * static_cast<double>(hw.l1Misses) /
                        static_cast<double>(hw.memAccesses));
    }

    std::printf("\ntakeaway: the HW/Volatile ratio stays roughly "
                "constant across cache geometries — the HW overhead "
                "is translation work, not cache pressure.\n");
    return 0;
}
