/**
 * @file
 * Minimal JSON emitter for the bench harness: a stack of open
 * containers with automatic comma placement and string escaping.
 * Output is deterministic (keys appear in emission order, numbers are
 * integers or shortest-round-trip doubles), so two BENCH_*.json files
 * diff cleanly and scripts/bench_diff.py can parse them with the
 * stdlib parser.
 */

#ifndef UPR_BENCH_BENCH_JSON_HH
#define UPR_BENCH_BENCH_JSON_HH

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace upr::bench
{

/** Streaming JSON writer. Misnesting trips an assertion, not output. */
class JsonWriter
{
  public:
    JsonWriter() { out_.reserve(4096); }

    JsonWriter &
    beginObject()
    {
        element();
        out_ += '{';
        stack_.push_back(Frame{'}', true});
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        element();
        out_ += '[';
        stack_.push_back(Frame{']', true});
        return *this;
    }

    JsonWriter &
    end()
    {
        upr_assert_msg(!stack_.empty(), "json: end() with nothing open");
        newlineIndent(stack_.size() - 1);
        out_ += stack_.back().closer;
        stack_.pop_back();
        return *this;
    }

    /** Key inside the innermost object; value call must follow. */
    JsonWriter &
    key(const std::string &k)
    {
        upr_assert_msg(!stack_.empty() && stack_.back().closer == '}',
                       "json: key outside an object");
        element();
        appendString(k);
        out_ += ": ";
        pendingValue_ = true;
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        element();
        appendString(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    JsonWriter &
    value(std::uint64_t v)
    {
        element();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        out_ += buf;
        return *this;
    }

    JsonWriter &
    value(std::int64_t v)
    {
        element();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRId64, v);
        out_ += buf;
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        return value(static_cast<std::int64_t>(v));
    }

    JsonWriter &
    value(double v)
    {
        element();
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        element();
        out_ += v ? "true" : "false";
        return *this;
    }

    /** Convenience: key + value in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** The finished document (all containers must be closed). */
    const std::string &
    str() const
    {
        upr_assert_msg(stack_.empty(), "json: unclosed container");
        return out_;
    }

    /** Write the document to @p path. @return false on I/O error. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        const std::string &s = str();
        const bool ok =
            std::fwrite(s.data(), 1, s.size(), f) == s.size() &&
            std::fputc('\n', f) != EOF;
        return std::fclose(f) == 0 && ok;
    }

  private:
    struct Frame
    {
        char closer;
        bool first;
    };

    /** Comma/indent bookkeeping before any element is emitted. */
    void
    element()
    {
        if (pendingValue_) {
            // Value directly after key(): no comma, no newline.
            pendingValue_ = false;
            return;
        }
        if (stack_.empty())
            return;
        if (!stack_.back().first)
            out_ += ',';
        stack_.back().first = false;
        newlineIndent(stack_.size());
    }

    void
    newlineIndent(std::size_t depth)
    {
        out_ += '\n';
        out_.append(2 * depth, ' ');
    }

    void
    appendString(const std::string &s)
    {
        out_ += '"';
        for (const char c : s) {
            switch (c) {
              case '"':  out_ += "\\\""; break;
              case '\\': out_ += "\\\\"; break;
              case '\n': out_ += "\\n";  break;
              case '\t': out_ += "\\t";  break;
              case '\r': out_ += "\\r";  break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    std::vector<Frame> stack_;
    bool pendingValue_ = false;
};

} // namespace upr::bench

#endif // UPR_BENCH_BENCH_JSON_HH
