#!/bin/sh
# CI entry point:
#   1. full RelWithDebInfo build + complete test suite;
#   2. ASan+UBSan build (cmake --preset asan) + the crash, compiler,
#      obs, fault, txn, exec and concurrent test labels — the suites
#      that exercise raw-memory recovery paths, deliberately corrupted
#      pool images, both transaction engines' log replay, the
#      parser/verifier/interpreter, the direct-threaded execution
#      tier's raw-window fast path, and the sharded multi-threaded
#      runtime, where memory bugs would hide; then a ThreadSanitizer
#      build (cmake --preset tsan) running the concurrent label's
#      real-thread suites (the deterministic single-driver MtCrashSweep
#      is excluded there — it has no cross-thread races to find and
#      TSan multiplies its wall time);
#   3. clang-tidy over the compiler subsystem, if available;
#   4. observability overhead gate: with event tracing compiled in,
#      a traced run and an untraced run of the quick bench must agree
#      on every simulated counter (tracing observes the model, never
#      perturbs it) and stay within 2% wall of each other.
#
# Usage: scripts/ci.sh [jobs]
set -eu

JOBS=${1:-$(nproc 2>/dev/null || echo 4)}
cd "$(dirname "$0")/.."

echo "==> tier 1: full build + full test suite"
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

echo "==> tier 2: ASan+UBSan build + crash/compiler labels"
cmake --preset asan
cmake --build --preset asan -j "$JOBS"
ctest --preset asan -j "$JOBS"

echo "==> tier 2t: TSan build + concurrent label"
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"
ctest --preset tsan -j "$JOBS"

echo "==> tier 3: clang-tidy (best effort)"
scripts/run_clang_tidy.sh || exit 1

echo "==> tier 3p: persistency lint exit codes over the IR corpus"
for ir in tests/ir_corpus/*.ir; do
    exp=$(sed -n 's/^exit=//p' "${ir%.ir}.expect")
    got=0
    build/tools/uprlint --persistency "$ir" > /dev/null 2>&1 || got=$?
    if [ "$got" != "$exp" ]; then
        echo "ci: uprlint --persistency $ir exited $got," \
             "expected $exp" >&2
        exit 1
    fi
done
echo "persistency: $(ls tests/ir_corpus/*.ir | wc -l) fixtures," \
     "exit codes match"

echo "==> tier 4: hostile-media fault sweep vs golden"
FAULT_OUT=$(mktemp -d)
build/bench/bench_harness --fault-only --out "$FAULT_OUT" > /dev/null
python3 scripts/bench_diff.py --wall-threshold 100000 \
    BENCH_fault.json "$FAULT_OUT/BENCH_fault.json"
rm -rf "$FAULT_OUT"

echo "==> tier 4t: txn-engine fence accounting vs golden"
TXN_OUT=$(mktemp -d)
build/bench/bench_harness --txn-only --out "$TXN_OUT" > /dev/null
python3 scripts/bench_diff.py --wall-threshold 100000 \
    BENCH_txn.json "$TXN_OUT/BENCH_txn.json"
rm -rf "$TXN_OUT"

echo "==> tier 4x: execution-tier invariance + speedup vs golden"
EXEC_OUT=$(mktemp -d)
build/bench/bench_harness --exec-only --out "$EXEC_OUT" > /dev/null
python3 scripts/bench_diff.py --wall-threshold 100000 \
    BENCH_exec.json "$EXEC_OUT/BENCH_exec.json"
rm -rf "$EXEC_OUT"

echo "==> tier 4c: concurrent KV store schedule independence vs golden"
CONC_OUT=$(mktemp -d)
build/bench/bench_harness --concurrent-only --out "$CONC_OUT" > /dev/null
python3 scripts/bench_diff.py --wall-threshold 100000 \
    BENCH_concurrent.json "$CONC_OUT/BENCH_concurrent.json"
rm -rf "$CONC_OUT"

echo "==> tier 5: observability overhead gate"
GATE_OUT=$(mktemp -d)
trap 'rm -rf "$GATE_OUT"' EXIT

# 4a. Zero counter drift: a traced quick run and an untraced quick run
# must agree on every simulated counter and metrics summary (tracing
# observes the model, never changes it). Wall is not gated here --
# quick-scale cells finish in ~1 ms, where wall time is pure noise --
# so the threshold is set out of reach and only bench_diff's hard
# drift error (exit 2) can fire.
mkdir -p "$GATE_OUT/off" "$GATE_OUT/on"
env -u UPR_OBS_TRACE build/bench/bench_harness \
    --quick --jobs "$JOBS" --out "$GATE_OUT/off" > /dev/null
UPR_OBS_TRACE=1 build/bench/bench_harness \
    --quick --jobs "$JOBS" --out "$GATE_OUT/on" > /dev/null
for f in BENCH_fig11.json BENCH_micro.json BENCH_static.json; do
    python3 scripts/bench_diff.py --wall-threshold 100000 \
        "$GATE_OUT/off/$f" "$GATE_OUT/on/$f"
done

# 4b. <2% overhead: full fig11 with tracing *enabled* must cost no
# more than 2% (median) over tracing disabled. Enabled does strictly
# more work than the disabled no-op branch, so passing this bounds
# the disabled overhead too. Methodology per docs/PERFORMANCE.md:
# children CPU time, not wall (shared CI boxes jitter wall well past
# 2%), adjacent off/on pairs so slow-machine drift cancels within a
# pair, and the median across pairs to shed outliers; four more
# pairs are added before failing.
python3 - "$GATE_OUT" "$JOBS" <<'EOF'
import os, statistics, subprocess, sys

base, jobs = sys.argv[1], sys.argv[2]

def cpu_of_run(out, trace):
    os.makedirs(out, exist_ok=True)
    env = dict(os.environ)
    env.pop("UPR_OBS_TRACE", None)
    if trace:
        env["UPR_OBS_TRACE"] = "1"
    t0 = os.times()
    subprocess.run(
        ["build/bench/bench_harness", "--fig11-only",
         "--jobs", jobs, "--out", out],
        check=True, stdout=subprocess.DEVNULL, env=env)
    t1 = os.times()
    return ((t1.children_user + t1.children_system) -
            (t0.children_user + t0.children_system))

deltas = []

def measure_pairs(n):
    for _ in range(n):
        i = len(deltas)
        off = cpu_of_run(f"{base}/cpu-off{i}", False)
        on = cpu_of_run(f"{base}/cpu-on{i}", True)
        deltas.append(100.0 * (on - off) / off)
    med = statistics.median(deltas)
    print(f"tracing overhead (enabled vs disabled, median of "
          f"{len(deltas)} cpu-time pairs): {med:+.2f}% (gate +2%)")
    return med

med = measure_pairs(5)
if med > 2.0:
    print("ci: over gate; adding four more interleaved pairs")
    med = measure_pairs(4)
sys.exit(0 if med <= 2.0 else 1)
EOF

echo "ci: all stages passed"
