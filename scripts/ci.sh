#!/bin/sh
# CI entry point:
#   1. full RelWithDebInfo build + complete test suite;
#   2. ASan+UBSan build (cmake --preset asan) + the crash and
#      compiler test labels — the suites that exercise raw-memory
#      recovery paths and the parser/verifier/interpreter, where
#      memory bugs would hide;
#   3. clang-tidy over the compiler subsystem, if available.
#
# Usage: scripts/ci.sh [jobs]
set -eu

JOBS=${1:-$(nproc 2>/dev/null || echo 4)}
cd "$(dirname "$0")/.."

echo "==> tier 1: full build + full test suite"
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

echo "==> tier 2: ASan+UBSan build + crash/compiler labels"
cmake --preset asan
cmake --build --preset asan -j "$JOBS"
ctest --preset asan -j "$JOBS"

echo "==> tier 3: clang-tidy (best effort)"
scripts/run_clang_tidy.sh || exit 1

echo "ci: all stages passed"
