#!/bin/sh
# uprpool check/repair CLI contract: exit statuses and --json output
# over images damaged with dd, the workflow CRASH_CONSISTENCY.md
# documents. Usage: uprpool_check.sh <uprpool-binary>
set -u

UPRPOOL=$1
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
IMG="$TMP/pool.img"

fail() { echo "uprpool_check: $1" >&2; exit 1; }

# dd one 0xFF byte of damage at a fixed header offset.
smash() { # offset
    printf '\377' | dd of="$IMG" bs=1 seek="$1" count=1 conv=notrunc \
                       status=none
}

# --- clean image: create + check exit 0 --------------------------------
"$UPRPOOL" create "$IMG" 1 || fail "create failed"
"$UPRPOOL" check "$IMG" > /dev/null || fail "clean image: check must exit 0"
"$UPRPOOL" info "$IMG" > /dev/null || fail "info failed"
"$UPRPOOL" dump "$IMG" > /dev/null || fail "dump failed"

# --- repairable damage: identity CRC byte (offset 72) -> exit 1 --------
smash 72
"$UPRPOOL" check "$IMG" > /dev/null
status=$?
[ $status -eq 1 ] || fail "identCrc damage: expected exit 1, got $status"
"$UPRPOOL" check --json "$IMG" > "$TMP/rep.json"
grep -q '"status": "repairable"' "$TMP/rep.json" \
    || fail "--json must report repairable"

# --- repair -> clean again ---------------------------------------------
"$UPRPOOL" check -r "$IMG" > /dev/null
status=$?
[ $status -eq 1 ] || fail "repair run: expected exit 1, got $status"
"$UPRPOOL" check "$IMG" > /dev/null || fail "repaired image: check must exit 0"

# --- unrepairable damage: arenaStart (offset 48) -> exit 2 -------------
# (Not the size field: that one is proven-repairable from the image
# length.)
smash 48
"$UPRPOOL" check "$IMG" > /dev/null
status=$?
[ $status -eq 2 ] || fail "arenaStart damage: expected 2, got $status"
"$UPRPOOL" check -r "$IMG" > /dev/null
status=$?
[ $status -eq 2 ] || fail "arenaStart repair: expected 2, got $status"
"$UPRPOOL" check --json "$IMG" > "$TMP/corrupt.json"
grep -q '"status": "corrupt"' "$TMP/corrupt.json" \
    || fail "--json must report corrupt"

# --- engine branding: create redo + info/check name the engine ---------
RIMG="$TMP/redo.img"
"$UPRPOOL" create "$RIMG" 1 redo || fail "create redo failed"
"$UPRPOOL" info "$RIMG" | grep -q "redo" \
    || fail "info must name the redo engine"
"$UPRPOOL" check --json "$RIMG" > "$TMP/redo.json"
grep -q '"engine": "redo"' "$TMP/redo.json" \
    || fail "--json must name the redo engine"
"$UPRPOOL" check "$RIMG" > /dev/null \
    || fail "fresh redo image: check must exit 0"
"$UPRPOOL" create "$TMP/u2.img" 1 undo || fail "create undo failed"
"$UPRPOOL" check --json "$TMP/u2.img" | grep -q '"engine": "undo"' \
    || fail "--json must name the undo engine"
"$UPRPOOL" create "$TMP/bad.img" 1 frob 2> /dev/null
status=$?
[ $status -eq 3 ] || fail "bad engine name: expected 3, got $status"

# --- usage errors -> exit 3 --------------------------------------------
"$UPRPOOL" frobnicate "$IMG" 2> /dev/null
status=$?
[ $status -eq 3 ] || fail "unknown command: expected 3, got $status"
"$UPRPOOL" check "$TMP/missing.img" 2> /dev/null
status=$?
[ $status -eq 3 ] || fail "missing file: expected 3, got $status"

echo "uprpool_check: OK"
