#!/bin/sh
# CLI-contract checks for uprlint that the golden corpus cannot cover:
#
#  1. `--` ends option parsing, so files whose names start with '-'
#     are lintable (they were previously unreachable: any leading '-'
#     was treated as an unknown option).
#  2. Without `--`, an unknown leading-dash argument is still a usage
#     error (exit 2).
#  3. Output is deterministic and files are processed in argument
#     order, in both text and --json modes.
#
#   uprlint_cli_check.sh <path-to-uprlint>
set -u

if [ $# -ne 1 ]; then
    echo "usage: $0 <uprlint>" >&2
    exit 2
fi

UPRLINT=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
WORK=$(mktemp -d) || exit 2
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 2
fail=0

# A minimal clean module; linting it must exit 0.
cat > module.ir <<'EOF'
func @main() -> i64 {
entry:
  %p = pmalloc 16
  %v = const 7
  %slot = gep %p, 8
  store %v, %slot
  %r = load.i64 %slot
  pfree %p
  ret %r
}
EOF
cp module.ir ./-dash.ir
cp module.ir second.ir

# 1. '--' makes the dash-prefixed file reachable.
if ! "$UPRLINT" -- -dash.ir > /dev/null 2>&1; then
    echo "FAIL: 'uprlint -- -dash.ir' did not lint the file" >&2
    fail=1
fi

# ... also when options precede the '--'.
if ! "$UPRLINT" --json -- -dash.ir > /dev/null 2>&1; then
    echo "FAIL: 'uprlint --json -- -dash.ir' did not lint" >&2
    fail=1
fi

# 2. Without '--' the same argument is a usage error.
"$UPRLINT" -dash.ir > /dev/null 2>&1
if [ $? -ne 2 ]; then
    echo "FAIL: 'uprlint -dash.ir' should be a usage error" >&2
    fail=1
fi

# 3a. Runs are byte-identical.
"$UPRLINT" --json -- -dash.ir second.ir > run1.json 2>&1
"$UPRLINT" --json -- -dash.ir second.ir > run2.json 2>&1
if ! cmp -s run1.json run2.json; then
    echo "FAIL: repeated runs differ" >&2
    fail=1
fi

# 3b. Files are reported in argument order.
order=$(grep -o '"file": "[^"]*"' run1.json | tr -d '"' |
        awk '{print $2}' | paste -sd' ' -)
if [ "$order" != "-dash.ir second.ir" ]; then
    echo "FAIL: argument order not preserved (got: $order)" >&2
    fail=1
fi
rev=$(
    "$UPRLINT" --json -- second.ir -dash.ir |
    grep -o '"file": "[^"]*"' | tr -d '"' |
    awk '{print $2}' | paste -sd' ' -
)
if [ "$rev" != "second.ir -dash.ir" ]; then
    echo "FAIL: reversed argument order not preserved (got: $rev)" >&2
    fail=1
fi

[ "$fail" -eq 0 ] && echo "uprlint CLI: OK"
exit "$fail"
