#!/usr/bin/env python3
"""Compare two bench_harness JSON outputs (BENCH_fig11.json /
BENCH_micro.json).

Two different contracts are enforced:

* Simulated model counters (cycles, checksum, memAccesses, ...) are
  part of the model's behaviour. Any drift between the two files is a
  HARD ERROR (exit 2): either the model changed on purpose (then the
  goldens must be recaptured and the change called out) or a
  "host-side-only" optimization leaked into the model.

* Wall-clock times are host-side and noisy. A cell or harness total
  regressing by more than the threshold (default 10%) is FLAGGED
  (exit 1) but is not proof of a bug -- re-measure interleaved before
  acting on it (see docs/PERFORMANCE.md).

Exit codes: 0 ok, 1 wall regression flagged, 2 counter drift or usage
error.

Usage: bench_diff.py [--wall-threshold PCT] old.json new.json
"""

import argparse
import json
import sys

# Every simulated counter a cell can carry; all must match exactly.
MODEL_KEYS = (
    "cycles", "checksum", "memAccesses", "storePs",
    "polbAccesses", "polbWalks", "valbAccesses", "valbWalks",
    "branches", "branchMisses", "dynamicChecks", "absToRel",
    "relToAbs", "reuseHits",
)

# Histogram summaries under a cell's "metrics" object that are
# simulated-cycle based and therefore deterministic. Only compared
# when both files carry the section (pre-observability baselines
# don't).
METRICS_KEYS = ("checkCycles", "ptrAssignCycles")

# Fault-sweep cells (BENCH_fault.json): every outcome tally is
# seed-driven and deterministic, so any drift is a hard error just
# like the model counters. wallMs stays host-side/noisy as usual.
FAULT_KEYS = (
    "crashPointsSampled", "injections", "benign", "repaired",
    "quarantined", "rejected", "noEffect", "silent", "containment",
)

# Txn-engine cells (BENCH_txn.json): the flush/fence tallies are exact
# functions of the fence-accounting model (docs/CRASH_CONSISTENCY.md),
# so counter drift is a hard error — an ordering-protocol change must
# recapture the golden deliberately. commitNs is real wall time and is
# not compared.
TXN_KEYS = (
    "txns", "writesPerTxn", "commits", "fences", "flushes",
    "groupBatches", "groupTxns",
    # txn-ir cells: the proof-driven logging-elision win. Counts are
    # exact functions of the plan and the fence-accounting model.
    "undoElidedWrites", "redoElidedRuns", "redoJournalBytes",
    "logElided",
)

# Static-analysis cells (BENCH_static.json): check-insertion site
# counts and the persistency analysis's proof/diagnostic tallies are
# exact functions of the module — any drift means the analysis
# changed, and the golden must be recaptured deliberately.
STATIC_KEYS = (
    "staticTotalSites", "staticRemainingSites", "staticRefinedSites",
    "staticElidedSites", "irInstructions", "irDynamicChecks",
    "txStores", "elidedFresh", "elidedDominated", "persistencyDiags",
)

# Concurrent cells (BENCH_concurrent.json): the sharded KV store's
# results depend only on per-shard sequential histories, so every
# tally — including the makespan/total in *modeled* cycles — is
# schedule-independent and drift is a hard error. commitNs is real
# wall time and is not compared.
CONCURRENT_KEYS = (
    "threads", "gets", "getHits", "sets", "maxCycles", "sumCycles",
    "commits",
)

# Execution-tier cells (BENCH_exec.json): lowering statistics and
# per-tier counters are exact functions of the module and check plan,
# so drift is a hard error. (checksum / dynamicChecks are already in
# MODEL_KEYS.) wallMs stays host-side/noisy as usual.
EXEC_KEYS = (
    "irInstructions", "loweredSites", "retainedGuards",
    "elidedGuards", "elidedSites", "fusedPairs",
)

# Cross-tier contract inside one BENCH_exec.json: for each workload,
# the model and native cells must agree on these exactly — a Native
# tier that computes a different checksum or runs a different number
# of guards is broken, not fast.
EXEC_TIER_KEYS = ("checksum", "dynamicChecks", "irInstructions")

# Native-vs-Model speedup below this is a flag (exit 1), not a hard
# error: the Native tier exists to beat the model by an order of
# magnitude on at least one workload — the conflict workload measures
# 10.7-14.0x (docs/PERFORMANCE.md) — and this CI floor sits below the
# worst observed run so a noisy host cannot flake the build.
EXEC_SPEEDUP_TARGET = 8.0
# Cells faster than this are too short to measure a ratio on.
EXEC_SPEEDUP_MIN_WALL_MS = 5.0


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if "cells" not in doc:
        sys.exit(f"bench_diff: {path}: not a bench_harness file "
                 "(no 'cells')")
    return doc


def cell_key(cell):
    return (cell.get("workload", "?"), cell.get("version", "?"))


def index_cells(doc, path):
    cells = {}
    for cell in doc["cells"]:
        key = cell_key(cell)
        if key in cells:
            sys.exit(f"bench_diff: {path}: duplicate cell "
                     f"{key[0]} x {key[1]}")
        cells[key] = cell
    return cells


def fmt_cell(key):
    return f"{key[0]} x {key[1]}"


def check_exec_tiers(cells, label, drift, regressions):
    """Cross-tier checks within one file's exec cells.

    Model/native disagreement on EXEC_TIER_KEYS is a hard error;
    best speedup below EXEC_SPEEDUP_TARGET is a flag.
    """
    workloads = sorted({w for (w, v) in cells if v == "model"
                        and (w, "native") in cells})
    best = None
    for w in workloads:
        model, native = cells[(w, "model")], cells[(w, "native")]
        if "error" in model or "error" in native:
            continue
        for k in EXEC_TIER_KEYS:
            if model.get(k) != native.get(k):
                drift.append(
                    f"{w} ({label}): tier mismatch on {k}: "
                    f"model {model.get(k)} vs native {native.get(k)}")
        mw, nw = model.get("wallMs"), native.get("wallMs")
        if mw and nw and mw >= EXEC_SPEEDUP_MIN_WALL_MS and nw > 0:
            speedup = mw / nw
            if best is None or speedup > best[1]:
                best = (w, speedup)
    if workloads and best is not None and best[1] < EXEC_SPEEDUP_TARGET:
        regressions.append(
            f"exec ({label}): best native speedup {best[1]:.1f}x on "
            f"{best[0]}, below the {EXEC_SPEEDUP_TARGET:.0f}x target")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--wall-threshold", type=float, default=10.0,
                    metavar="PCT",
                    help="flag wall-time regressions beyond this "
                         "percentage (default: %(default)s)")
    ap.add_argument("old", help="baseline BENCH_*.json")
    ap.add_argument("new", help="candidate BENCH_*.json")
    args = ap.parse_args()

    old_doc = load(args.old)
    new_doc = load(args.new)

    if old_doc.get("benchScale") != new_doc.get("benchScale"):
        sys.exit(f"bench_diff: benchScale differs "
                 f"({old_doc.get('benchScale')} vs "
                 f"{new_doc.get('benchScale')}): runs not comparable")

    old_cells = index_cells(old_doc, args.old)
    new_cells = index_cells(new_doc, args.new)

    drift = []        # model-counter mismatches: hard error
    regressions = []  # wall-time flags
    notes = []

    for key in sorted(set(old_cells) | set(new_cells)):
        if key not in new_cells:
            drift.append(f"{fmt_cell(key)}: missing from {args.new}")
            continue
        if key not in old_cells:
            notes.append(f"{fmt_cell(key)}: new cell (no baseline)")
            continue
        old, new = old_cells[key], new_cells[key]

        for side, cell, path in (("old", old, args.old),
                                 ("new", new, args.new)):
            if "error" in cell:
                drift.append(f"{fmt_cell(key)}: {side} run failed "
                             f"({path}): {cell['error']}")
        if "error" in old or "error" in new:
            continue

        for k in (MODEL_KEYS + FAULT_KEYS + TXN_KEYS + EXEC_KEYS +
                  STATIC_KEYS + CONCURRENT_KEYS):
            if old.get(k) != new.get(k):
                drift.append(
                    f"{fmt_cell(key)}: {k} {old.get(k)} -> "
                    f"{new.get(k)}")

        om, nm = old.get("metrics"), new.get("metrics")
        if om is not None and nm is not None:
            for k in METRICS_KEYS:
                if om.get(k) != nm.get(k):
                    drift.append(
                        f"{fmt_cell(key)}: metrics.{k} {om.get(k)} "
                        f"-> {nm.get(k)}")
        elif (om is None) != (nm is None):
            notes.append(f"{fmt_cell(key)}: metrics section only in "
                         f"{'new' if om is None else 'old'} file")

        ow, nw = old.get("wallMs"), new.get("wallMs")
        if ow and nw and ow > 0:
            pct = 100.0 * (nw - ow) / ow
            if pct > args.wall_threshold:
                regressions.append(
                    f"{fmt_cell(key)}: wall {ow:.1f} ms -> "
                    f"{nw:.1f} ms (+{pct:.1f}%)")

    check_exec_tiers(old_cells, "old", drift, regressions)
    check_exec_tiers(new_cells, "new", drift, regressions)

    oh, nh = old_doc.get("harnessWallMs"), new_doc.get("harnessWallMs")
    if oh and nh and oh > 0:
        pct = 100.0 * (nh - oh) / oh
        if pct > args.wall_threshold:
            regressions.append(
                f"harness total: {oh:.1f} ms -> {nh:.1f} ms "
                f"(+{pct:.1f}%)")

    for n in notes:
        print(f"note: {n}")
    if drift:
        print(f"MODEL DRIFT ({len(drift)} mismatches) -- simulated "
              "counters must be bit-identical between runs:")
        for d in drift:
            print(f"  {d}")
    if regressions:
        print(f"wall-time regressions beyond "
              f"{args.wall_threshold:.0f}% ({len(regressions)}):")
        for r in regressions:
            print(f"  {r}")
    if not drift and not regressions:
        n = len(set(old_cells) & set(new_cells))
        print(f"ok: {n} cells compared, counters identical, "
              f"wall within {args.wall_threshold:.0f}%"
              f" (rev {old_doc.get('gitRev')} -> "
              f"{new_doc.get('gitRev')})")

    if drift:
        return 2
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
