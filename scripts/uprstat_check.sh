#!/bin/sh
# uprstat contract checks: canonical-JSON round-trip stability, pretty
# printing of both accepted document shapes, and diff semantics
# (identical -> exit 0, any changed entry -> exit 1 and a delta row).
#
#   uprstat_check.sh <path-to-uprstat> <path-to-bench_harness>
set -u

if [ $# -ne 2 ]; then
    echo "usage: $0 <uprstat> <bench_harness>" >&2
    exit 2
fi

UPRSTAT=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
HARNESS=$(cd "$(dirname "$2")" && pwd)/$(basename "$2")
WORK=$(mktemp -d) || exit 2
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 2
fail=0

# A real bench document (micro section only: milliseconds of work).
if ! "$HARNESS" --quick --micro-only --jobs 2 --out . > /dev/null; then
    echo "FAIL: bench_harness --quick --micro-only" >&2
    exit 1
fi

# A snapshot-shaped document, as MetricsSnapshot::toJson() emits.
cat > snap.json <<'EOF'
{
  "counters": {
    "core.loads": 18446744073709551615,
    "upr.dynamicChecks": 42
  },
  "histograms": {
    "upr.checkCycles": {"count": 42, "sum": 126, "min": 3, "max": 3,
                        "p50": 3, "p90": 3, "p99": 3}
  }
}
EOF

for doc in BENCH_micro.json snap.json; do
    # Round trip: dump(parse(x)) is stable under a second pass.
    "$UPRSTAT" --json "$doc" > rt1.json || fail=1
    "$UPRSTAT" --json rt1.json > rt2.json || fail=1
    if ! cmp -s rt1.json rt2.json; then
        echo "FAIL: $doc: canonical form not byte-stable" >&2
        fail=1
    fi
    # Pretty print succeeds and is non-empty.
    if ! "$UPRSTAT" "$doc" | grep -q .; then
        echo "FAIL: $doc: empty pretty output" >&2
        fail=1
    fi
    # Self-diff: identical, exit 0.
    if ! "$UPRSTAT" --diff "$doc" "$doc" > /dev/null; then
        echo "FAIL: $doc: self-diff not clean" >&2
        fail=1
    fi
done

# Exact 64-bit round trip: 2^64-1 must survive parse -> dump.
if ! grep -q 18446744073709551615 rt1.json; then
    echo "FAIL: uint64 max corrupted by round trip" >&2
    fail=1
fi

# A changed value must be reported and flip the exit code.
sed 's/"p50": 3/"p50": 7/' snap.json > snap2.json
"$UPRSTAT" --diff snap.json snap2.json > diff.out
if [ $? -ne 1 ]; then
    echo "FAIL: diff of differing docs should exit 1" >&2
    fail=1
fi
if ! grep -q "upr.checkCycles.p50" diff.out; then
    echo "FAIL: diff did not name the changed entry" >&2
    cat diff.out >&2
    fail=1
fi

[ "$fail" -eq 0 ] && echo "uprstat: OK"
exit "$fail"
