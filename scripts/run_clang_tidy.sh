#!/bin/sh
# Run clang-tidy (config: .clang-tidy) over the first-party sources
# using the compile database from the default build directory.
#
#   scripts/run_clang_tidy.sh [build-dir]
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed, so CI works on minimal images.
set -u

cd "$(dirname "$0")/.."
BUILD=${1:-build}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not installed; skipping" >&2
    exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "run_clang_tidy: $BUILD/compile_commands.json missing;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

FILES=$(find src tools -name '*.cc' -o -name '*.cpp' | sort)
fail=0
for f in $FILES; do
    clang-tidy -p "$BUILD" --quiet "$f" || fail=1
done
exit "$fail"
