#!/bin/sh
# Golden-diff the uprlint output over every fixture in the IR corpus.
#
#   lint_corpus_check.sh <path-to-uprlint> <corpus-dir>
#
# Each <name>.ir has a committed <name>.expect holding the exact
# `uprlint --report-elision <name>.ir` output plus a final "exit=N"
# line, and a <name>.json.expect holding the `--json` document — the
# machine-readable per-site elision contract (siteRecords) that the
# fast-path lowering consumes. Regenerate goldens after an
# intentional output change with:
#   cd tests/ir_corpus && for f in *.ir; do
#     { uprlint --report-elision "$f"; echo "exit=$?"; } > "${f%.ir}.expect"
#     { uprlint --json --report-elision "$f"; echo "exit=$?"; } \
#         > "${f%.ir}.json.expect"
#   done
set -u

if [ $# -ne 2 ]; then
    echo "usage: $0 <uprlint> <corpus-dir>" >&2
    exit 2
fi

UPRLINT=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
CORPUS=$2
fail=0
count=0

cd "$CORPUS" || exit 2
for f in *.ir; do
    base="${f%.ir}"
    if [ ! -f "$base.expect" ]; then
        echo "MISSING GOLDEN: $base.expect" >&2
        fail=1
        continue
    fi
    actual=$("$UPRLINT" --report-elision "$f" 2>&1; echo "exit=$?")
    expected=$(cat "$base.expect")
    if [ "$actual" != "$expected" ]; then
        echo "GOLDEN MISMATCH: $f" >&2
        printf '%s\n' "$actual" | diff -u "$base.expect" - >&2
        fail=1
    fi
    if [ ! -f "$base.json.expect" ]; then
        echo "MISSING GOLDEN: $base.json.expect" >&2
        fail=1
        count=$((count + 1))
        continue
    fi
    actual=$("$UPRLINT" --json --report-elision "$f" 2>&1
             echo "exit=$?")
    expected=$(cat "$base.json.expect")
    if [ "$actual" != "$expected" ]; then
        echo "GOLDEN MISMATCH: $f (--json)" >&2
        printf '%s\n' "$actual" | diff -u "$base.json.expect" - >&2
        fail=1
    fi
    count=$((count + 1))
done

if [ "$count" -eq 0 ]; then
    echo "no fixtures found in $CORPUS" >&2
    exit 2
fi
[ "$fail" -eq 0 ] && echo "lint corpus: $count fixture(s) OK"
exit "$fail"
