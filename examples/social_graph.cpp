/**
 * @file
 * A persistent social graph — a domain application composing several
 * "legacy" containers on NVM at once: a hash map from user ID to
 * profile, per-user adjacency (linked lists of follower edges), and a
 * red-black tree as a by-karma leaderboard index.
 *
 * Demonstrates what the paper's transparency buys at application
 * scale: three different library data structures, one pool, pointer
 * links across all of them, everything surviving relocation — and no
 * NVM-specific code in any container.
 */

#include <cinttypes>
#include <cstdio>

#include "containers/hash_map.hh"
#include "containers/linked_list.hh"
#include "containers/rb_tree.hh"

using namespace upr;

namespace
{

/** One follower edge (element of a user's adjacency list). */
struct Edge
{
    std::uint64_t peer = 0; //!< user id of the follower
    std::uint64_t since = 0;
};

/** A user profile: scalar fields + the head of its adjacency list. */
struct Profile
{
    Ptr<LinkedList<Edge>::Header> followers;
    std::uint64_t karma = 0;
    std::uint64_t joined = 0;
};

} // namespace

int
main()
{
    Runtime rt;
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("social", 64 << 20);
    MemEnv env = MemEnv::persistentEnv(rt, pool);

    // user id -> profile pointer; karma -> user id (leaderboard).
    HashMap<std::uint64_t, Ptr<Profile>> users(env);
    RbTree<std::uint64_t, std::uint64_t> leaderboard(env);

    // Create a small network.
    Rng rng(2026);
    const std::uint64_t kUsers = 500;
    for (std::uint64_t id = 0; id < kUsers; ++id) {
        Ptr<Profile> p = env.alloc<Profile>();
        LinkedList<Edge> followers(env);
        p.setField(&Profile::followers, followers.header());
        p.setField(&Profile::joined, 20'200'000 + id);
        users.insert(id, p);
    }

    // Random follow edges + karma.
    std::uint64_t edges = 0;
    for (std::uint64_t id = 0; id < kUsers; ++id) {
        Ptr<Profile> p = *users.find(id);
        LinkedList<Edge> followers(env,
                                   p.field(&Profile::followers));
        const std::uint64_t n = rng.nextBounded(20);
        for (std::uint64_t e = 0; e < n; ++e) {
            followers.pushBack({rng.nextBounded(kUsers), e});
            ++edges;
        }
        const std::uint64_t karma = n * 10 + rng.nextBounded(10);
        p.setField(&Profile::karma, karma);
        leaderboard.insert(karma * kUsers + id, id); // unique key
    }
    std::printf("built: %" PRIu64 " users, %" PRIu64
                " follow edges\n", kUsers, edges);

    // Point the pool root at the user table and relocate everything.
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(users.header().bits()));
    const SimAddr before = rt.pools().baseOf(pool);
    rt.pools().detach(pool);
    rt.pools().openPool("social");
    std::printf("pool relocated 0x%" PRIx64 " -> 0x%" PRIx64 "\n",
                before, rt.pools().baseOf(pool));

    // Reattach via the root and query through three containers.
    HashMap<std::uint64_t, Ptr<Profile>> reopened(
        env,
        Ptr<HashMap<std::uint64_t, Ptr<Profile>>::Header>::fromBits(
            PtrRepr::makeRelative(pool,
                                  rt.pools().pool(pool).rootOff())));
    reopened.validate();

    // Top-5 leaderboard via tree cursors, newest-first followers via
    // the adjacency lists — all across the relocation boundary.
    std::printf("top-5 by karma:\n");
    int shown = 0;
    for (auto c = leaderboard.last(); c.valid() && shown < 5;
         c = leaderboard.prev(c), ++shown) {
        const std::uint64_t id = leaderboard.valueAt(c);
        Ptr<Profile> p = *reopened.find(id);
        LinkedList<Edge> followers(env,
                                   p.field(&Profile::followers));
        std::printf("  user %-4" PRIu64 " karma %-4" PRIu64
                    " followers %" PRIu64 "\n",
                    id, p.field(&Profile::karma), followers.size());
        followers.validate();
        if (c == leaderboard.first())
            break;
    }

    // A consistency sweep: every edge's peer must resolve.
    std::uint64_t checked = 0;
    reopened.forEach([&](std::uint64_t, Ptr<Profile> p) {
        LinkedList<Edge> followers(env,
                                   p.field(&Profile::followers));
        followers.forEach([&](const Edge &e) {
            if (!reopened.contains(e.peer))
                upr_panic("dangling follower edge");
            ++checked;
        });
    });
    std::printf("verified %" PRIu64 " edges resolve after "
                "relocation\n", checked);
    std::printf("cycles simulated: %" PRIu64 "\n", rt.machine().now());
    return checked == edges ? 0 : 1;
}
