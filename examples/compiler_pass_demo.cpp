/**
 * @file
 * The compiler-based method (Sec V-B) end to end: parse a small
 * library in mini-IR, run pointer-kind inference, insert dynamic
 * checks only where inference is defeated, then execute under the SW
 * version and report how much checking survived — the paper's Fig 8/9
 * pipeline in one program.
 */

#include <cinttypes>
#include <cstdio>

#include "compiler/analysis/abstract_interp.hh"
#include "compiler/analysis/elision.hh"
#include "compiler/analysis/fig4_conformance.hh"
#include "compiler/demo_programs.hh"
#include "compiler/interpreter.hh"
#include "compiler/ir_parser.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

/** A library function (unknown params) plus a driver (known kinds). */
const char *kSource = kFig9Source;

std::uint64_t
runOnce(bool with_inference, std::uint64_t *dynamic_execs,
        std::uint64_t *cycles, CheckPlan *plan_out)
{
    Module mod = parseModule(kSource);
    InferenceResult inf;
    const InferenceResult *infp = nullptr;
    if (with_inference) {
        inf = inferPointerKinds(mod);
        infp = &inf;
    }
    CheckPlan plan = insertChecks(mod, infp);
    if (plan_out)
        *plan_out = plan;

    Runtime::Config cfg;
    cfg.version = Version::Sw;
    Runtime rt(cfg);
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("demo", 32 << 20);
    Interpreter interp(rt, mod, plan, icfg);
    const std::uint64_t result = interp.call("main", {200});
    if (dynamic_execs)
        *dynamic_execs = interp.dynamicCheckCount();
    if (cycles)
        *cycles = rt.machine().now();
    return result;
}

} // namespace

int
main()
{
    // Show the parsed module with the inserted checks annotated
    // (the Fig 9 view).
    Module mod = parseModule(kSource);
    {
        const auto inf0 = inferPointerKinds(mod);
        const CheckPlan p0 = insertChecks(mod, &inf0);
        std::printf("=== module (checks annotated) ===\n%s\n",
                    printAnnotated(mod, p0).c_str());
    }

    // Inference report.
    const auto inf = inferPointerKinds(mod);
    const Function &append = mod.get("append");
    std::printf("=== inferred kinds in @append ===\n");
    for (ValueId v = 0; v < append.numValues(); ++v) {
        if (append.valueTypes[v] == Type::Ptr) {
            std::printf("  %%%-6s : %s\n",
                        append.valueNames[v].c_str(),
                        kindName(inf.kindOf(append, v)));
        }
    }
    const Function &mainFn = mod.get("main");
    std::printf("=== inferred kinds in @main (excerpt) ===\n");
    for (ValueId v = 0; v < mainFn.numValues(); ++v) {
        if (mainFn.valueTypes[v] == Type::Ptr) {
            std::printf("  %%%-6s : %s\n",
                        mainFn.valueNames[v].c_str(),
                        kindName(inf.kindOf(mainFn, v)));
        }
    }

    // Static check statistics.
    CheckPlan with, without;
    std::uint64_t dyn_with = 0, dyn_without = 0;
    std::uint64_t cyc_with = 0, cyc_without = 0;
    const std::uint64_t r1 = runOnce(true, &dyn_with, &cyc_with,
                                     &with);
    const std::uint64_t r2 = runOnce(false, &dyn_without,
                                     &cyc_without, &without);

    std::printf("\n=== check insertion ===\n");
    std::printf("  without inference: %" PRIu64 "/%" PRIu64
                " static sites dynamic\n",
                without.remainingSites, without.totalSites);
    std::printf("  with inference:    %" PRIu64 "/%" PRIu64
                " static sites dynamic (%.0f%% eliminated)\n",
                with.remainingSites, with.totalSites,
                100.0 * with.eliminatedFraction());
    std::printf("\n=== execution (SW version, 200 nodes) ===\n");
    std::printf("  result: %" PRIu64 " (both runs agree: %s)\n", r1,
                r1 == r2 ? "yes" : "NO");
    std::printf("  dynamic checks executed: %" PRIu64 " -> %" PRIu64
                " with inference\n", dyn_without, dyn_with);
    std::printf("  cycles: %" PRIu64 " -> %" PRIu64
                " with inference\n", cyc_without, cyc_with);

    // Static analysis (what `uprlint --report-elision` prints):
    // Fig 4 conformance verdicts per site, then proof-driven check
    // elision validated against the unelided plan.
    std::printf("\n=== static analysis (uprlint view) ===\n");
    const auto linf = inferPointerKinds(mod, true);
    FlowAnalysis flow(mod, linf);
    DiagnosticEngine diags;
    const ConformanceReport rep =
        checkFig4Conformance(mod, flow, diags);
    std::printf("  %zu site(s): %" PRIu64 " proved-safe, %" PRIu64
                " needs-dynamic-check, %" PRIu64 " diagnosed-UB\n",
                rep.sites.size(), rep.provedSafe, rep.needsDynamic,
                rep.diagnosedUB);
    if (!diags.empty())
        std::printf("%s", diags.render("fig9.ir").c_str());

    CheckPlan before = insertChecks(mod, &linf);
    CheckPlan after = before;
    const ElisionResult eres = elideChecks(mod, flow, after);
    std::printf("  elision: %" PRIu64 " check(s) elided, %" PRIu64
                " of %" PRIu64 " site(s) remain dynamic\n",
                eres.elidedSites, after.remainingSites,
                after.totalSites);
    for (const ElisionProof &p : eres.proofs) {
        std::printf("  %s: [elide-%s] %s [@%s]\n",
                    p.loc.str().c_str(), p.role.c_str(),
                    p.reason.c_str(), p.function.c_str());
    }
    const ElisionValidation v =
        validateElision(mod, before, after, "main", {200});
    std::printf("  validation: result %" PRIu64 " == %" PRIu64
                ", dynamic checks %" PRIu64 " -> %" PRIu64
                ", bit-identical: %s\n",
                v.resultBefore, v.resultAfter, v.checksBefore,
                v.checksAfter, v.bitIdentical ? "yes" : "NO");

    return r1 == r2 && v.bitIdentical &&
                   v.checksAfter <= v.checksBefore
               ? 0
               : 1;
}
