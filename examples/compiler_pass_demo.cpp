/**
 * @file
 * The compiler-based method (Sec V-B) end to end: parse a small
 * library in mini-IR, run pointer-kind inference, insert dynamic
 * checks only where inference is defeated, then execute under the SW
 * version and report how much checking survived — the paper's Fig 8/9
 * pipeline in one program.
 */

#include <cinttypes>
#include <cstdio>

#include "compiler/interpreter.hh"
#include "compiler/ir_parser.hh"

using namespace upr;
using namespace upr::ir;

namespace
{

/** A library function (unknown params) plus a driver (known kinds). */
const char *kSource = R"(
; The paper's Fig 9 example: linked-list append.
; Node layout: { ptr next; i64 value }
func @append(%p: ptr, %n: ptr) {
entry:
  %same = eq %p, %n
  br %same, out, doit
doit:
  %slot = gep %p, 0
  storep %n, %slot
  jmp out
out:
  ret
}

; Build a persistent chain of %n nodes using @append, then sum it.
func @main(%count: i64) -> i64 {
entry:
  %zero = const 0
  %head = pmalloc 16
  %vslot0 = gep %head, 8
  store %zero, %vslot0
  jmp loop
loop:
  %i = phi.i64 [entry, %zero], [body, %inext]
  %tail = phi.ptr [entry, %head], [body, %node]
  %cont = lt %i, %count
  br %cont, body, walk
body:
  %node = pmalloc 16
  %one = const 1
  %inext = add %i, %one
  %vslot = gep %node, 8
  store %inext, %vslot
  %nslot = gep %node, 0
  storep %node, %nslot     ; self-link first (append overwrites)
  call @append(%tail, %node)
  jmp loop
walk:
  jmp whead
whead:
  %cur = phi.ptr [walk, %head], [wbody, %nxt]
  %acc = phi.i64 [walk, %zero], [wbody, %accn]
  %curv = gep %cur, 8
  %v = load.i64 %curv
  %accn = add %acc, %v
  %nslot2 = gep %cur, 0
  %nxt = load.ptr %nslot2
  %ni = ptrtoint %nxt
  %ci = ptrtoint %cur
  %self = eq %ni, %ci
  br %self, done, wbody
wbody:
  jmp whead
done:
  ret %accn
}
)";

std::uint64_t
runOnce(bool with_inference, std::uint64_t *dynamic_execs,
        std::uint64_t *cycles, CheckPlan *plan_out)
{
    Module mod = parseModule(kSource);
    InferenceResult inf;
    const InferenceResult *infp = nullptr;
    if (with_inference) {
        inf = inferPointerKinds(mod);
        infp = &inf;
    }
    CheckPlan plan = insertChecks(mod, infp);
    if (plan_out)
        *plan_out = plan;

    Runtime::Config cfg;
    cfg.version = Version::Sw;
    Runtime rt(cfg);
    Interpreter::Config icfg;
    icfg.pool = rt.createPool("demo", 32 << 20);
    Interpreter interp(rt, mod, plan, icfg);
    const std::uint64_t result = interp.call("main", {200});
    if (dynamic_execs)
        *dynamic_execs = interp.dynamicCheckCount();
    if (cycles)
        *cycles = rt.machine().now();
    return result;
}

} // namespace

int
main()
{
    // Show the parsed module with the inserted checks annotated
    // (the Fig 9 view).
    Module mod = parseModule(kSource);
    {
        const auto inf0 = inferPointerKinds(mod);
        const CheckPlan p0 = insertChecks(mod, &inf0);
        std::printf("=== module (checks annotated) ===\n%s\n",
                    printAnnotated(mod, p0).c_str());
    }

    // Inference report.
    const auto inf = inferPointerKinds(mod);
    const Function &append = mod.get("append");
    std::printf("=== inferred kinds in @append ===\n");
    for (ValueId v = 0; v < append.numValues(); ++v) {
        if (append.valueTypes[v] == Type::Ptr) {
            std::printf("  %%%-6s : %s\n",
                        append.valueNames[v].c_str(),
                        kindName(inf.kindOf(append, v)));
        }
    }
    const Function &mainFn = mod.get("main");
    std::printf("=== inferred kinds in @main (excerpt) ===\n");
    for (ValueId v = 0; v < mainFn.numValues(); ++v) {
        if (mainFn.valueTypes[v] == Type::Ptr) {
            std::printf("  %%%-6s : %s\n",
                        mainFn.valueNames[v].c_str(),
                        kindName(inf.kindOf(mainFn, v)));
        }
    }

    // Static check statistics.
    CheckPlan with, without;
    std::uint64_t dyn_with = 0, dyn_without = 0;
    std::uint64_t cyc_with = 0, cyc_without = 0;
    const std::uint64_t r1 = runOnce(true, &dyn_with, &cyc_with,
                                     &with);
    const std::uint64_t r2 = runOnce(false, &dyn_without,
                                     &cyc_without, &without);

    std::printf("\n=== check insertion ===\n");
    std::printf("  without inference: %" PRIu64 "/%" PRIu64
                " static sites dynamic\n",
                without.remainingSites, without.totalSites);
    std::printf("  with inference:    %" PRIu64 "/%" PRIu64
                " static sites dynamic (%.0f%% eliminated)\n",
                with.remainingSites, with.totalSites,
                100.0 * with.eliminatedFraction());
    std::printf("\n=== execution (SW version, 200 nodes) ===\n");
    std::printf("  result: %" PRIu64 " (both runs agree: %s)\n", r1,
                r1 == r2 ? "yes" : "NO");
    std::printf("  dynamic checks executed: %" PRIu64 " -> %" PRIu64
                " with inference\n", dyn_without, dyn_with);
    std::printf("  cycles: %" PRIu64 " -> %" PRIu64
                " with inference\n", cyc_without, cyc_with);
    return r1 == r2 ? 0 : 1;
}
