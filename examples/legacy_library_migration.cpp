/**
 * @file
 * The paper's core scenario: a "legacy library" (our red-black tree,
 * written once, with no NVM-specific code) is used by an application
 * that sometimes hands it volatile objects and sometimes persistent
 * ones — even in the *same* run — and the library works unchanged.
 *
 * Contrast with the explicit model (Sec I): there, the library would
 * need a second source version using PMEMoid-style types, and the
 * 16-combination explosion of the KNN case study (Sec VII-E).
 *
 * The "migration" is exactly one line: which MemEnv the container is
 * constructed with.
 */

#include <cinttypes>
#include <cstdio>

#include "containers/rb_tree.hh"

using namespace upr;

namespace
{

using Tree = RbTree<std::uint64_t, std::uint64_t>;

/**
 * An "application routine" that exercises a tree. It has no idea —
 * and no way to tell — whether the tree's nodes are persistent.
 */
std::uint64_t
exerciseLibrary(Tree &tree, std::uint64_t salt)
{
    for (std::uint64_t i = 0; i < 1000; ++i)
        tree.insert(i * 7 + salt, i);
    for (std::uint64_t i = 0; i < 1000; i += 3)
        tree.erase(i * 7 + salt);
    tree.validate();

    std::uint64_t checksum = 0;
    tree.forEach([&](std::uint64_t k, std::uint64_t v) {
        checksum ^= k * 31 + v;
    });
    return checksum;
}

} // namespace

int
main()
{
    Runtime rt;
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("library-pool", 64 << 20);

    // The one-line difference between "volatile use" and "migrated
    // to NVM" — the library source is identical.
    Tree volatile_tree(MemEnv::volatileEnv(rt));            // DRAM
    Tree persistent_tree(MemEnv::persistentEnv(rt, pool));  // NVM

    const std::uint64_t vsum = exerciseLibrary(volatile_tree, 1);
    const std::uint64_t psum = exerciseLibrary(persistent_tree, 1);
    std::printf("volatile-tree checksum:   0x%016" PRIx64 "\n", vsum);
    std::printf("persistent-tree checksum: 0x%016" PRIx64 "\n", psum);
    std::printf("identical behaviour: %s\n",
                vsum == psum ? "yes" : "NO (bug!)");

    // Mixed call pattern: the same library function invoked with a
    // persistent tree in one call and a volatile one in the next —
    // the uncertainty that makes static typing of libraries so
    // painful (requirement (i) of the paper).
    Tree *trees[] = {&volatile_tree, &persistent_tree};
    for (int round = 0; round < 4; ++round) {
        Tree &t = *trees[round % 2];
        t.insert(1'000'000 + round, round);
    }
    std::printf("mixed-call rounds OK; sizes: volatile=%" PRIu64
                " persistent=%" PRIu64 "\n",
                volatile_tree.size(), persistent_tree.size());

    // The persistent tree survives pool relocation; the volatile one
    // (correctly) lives only as long as the process.
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(persistent_tree.header().bits()));
    rt.pools().detach(pool);
    rt.pools().openPool("library-pool");

    Tree reopened(MemEnv::persistentEnv(rt, pool),
                  Ptr<Tree::Header>::fromBits(PtrRepr::makeRelative(
                      pool, rt.pools().pool(pool).rootOff())));
    reopened.validate();
    std::printf("reopened persistent tree: %" PRIu64 " keys, "
                "invariants OK\n", reopened.size());

    // Table V-style counters for this run.
    std::printf("dynamic checks: %" PRIu64 ", abs->rel: %" PRIu64
                ", rel->abs: %" PRIu64 "\n",
                rt.dynamicChecks(), rt.absToRel(), rt.relToAbs());
    return vsum == psum ? 0 : 1;
}
