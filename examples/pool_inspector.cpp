/**
 * @file
 * pool_inspector — a pmempool-style maintenance tool: dump a pool
 * image's header, undo-log state, allocator arena map, and free-list
 * statistics; optionally run crash recovery on it.
 *
 * Usage:
 *   pool_inspector                 (self-demo: builds an image first)
 *   pool_inspector <image> [--recover]
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "containers/rb_tree.hh"
#include "nvm/engine.hh"
#include "nvm/pool_allocator.hh"
#include "nvm/txn.hh"

using namespace upr;

namespace
{

/** Load a pool image file into a Pool object. */
Pool
loadImage(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        upr_fatal("cannot open '%s'", path.c_str());
    const std::streamsize n = is.tellg();
    is.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n));
    is.read(reinterpret_cast<char *>(bytes.data()), n);
    Backing image;
    image.assign(std::move(bytes));
    return Pool(path, std::move(image));
}

void
inspect(Pool &pool, bool recover)
{
    const PoolHeader h = pool.header();
    std::printf("== pool header ==\n");
    std::printf("  magic        0x%016" PRIx64 " (%s)\n", h.magic,
                h.magic == PoolHeader::kMagic ? "ok" : "BAD");
    std::printf("  version      %u\n", h.version);
    std::printf("  pool id      %u\n", h.poolId);
    std::printf("  size         %" PRIu64 " bytes (%.1f MiB)\n",
                h.size, static_cast<double>(h.size) / (1 << 20));
    std::printf("  root offset  0x%" PRIx64 "%s\n", h.rootOff,
                h.rootOff ? "" : " (unset)");
    std::printf("  engine       %s\n", engineKindName(pool.engineKind()));
    std::printf("  arena        [0x%" PRIx64 ", 0x%" PRIx64 ")\n",
                h.arenaStart, h.size);
    std::printf("  txn log      [0x%" PRIx64 ", +%" PRIu64 ")\n",
                h.logStart, h.logSize);

    std::printf("\n== transaction state ==\n");
    const bool redo = pool.engineKind() == EngineKind::Redo;
    if (TxnEngine::isActive(pool)) {
        std::printf(redo ? "  COMMITTED redo journal awaiting replay "
                           "(crashed mid-commit)\n"
                         : "  ACTIVE transaction log found (crashed "
                           "mid-transaction)\n");
        if (recover) {
            TxnEngine::recover(pool);
            std::printf(redo ? "  ...recovered: journal replayed "
                               "forward, log cleared\n"
                             : "  ...recovered: undo entries applied, "
                               "log cleared\n");
        } else {
            std::printf(redo ? "  run with --recover to replay\n"
                             : "  run with --recover to roll back\n");
        }
    } else {
        std::printf("  clean (no pending recovery work)\n");
    }

    std::printf("\n== allocator arena ==\n");
    PoolAllocator alloc(pool);
    // inspectArena, not checkConsistency: an inspector pointed at a
    // damaged image must report, never panic.
    const ArenaReport arena = alloc.inspectArena();
    if (!arena.tagsValid || !arena.freeListValid) {
        std::printf("  DAMAGED      %s\n", arena.what.c_str());
        std::printf("  (run 'uprpool check' for a full diagnosis)\n");
        return;
    }
    const Bytes free_bytes = alloc.freeBytes();
    std::printf("  live blocks  %zu\n", arena.blocks - arena.freeBlocks);
    std::printf("  free bytes   %" PRIu64 " (%.1f%% of arena)\n",
                free_bytes,
                100.0 * static_cast<double>(free_bytes) /
                    static_cast<double>(h.size - h.arenaStart));
    std::printf("  consistency  ok (boundary tags + free list)\n");
}

/** Build a demo image so the tool has something to inspect. */
std::string
buildDemoImage(bool crashed)
{
    Runtime rt;
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("demo", 4 << 20);
    using Tree = RbTree<std::uint64_t, std::uint64_t>;
    Tree tree(MemEnv::persistentEnv(rt, pool));
    for (std::uint64_t i = 0; i < 500; ++i)
        tree.insert(i * 3, i);
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(tree.header().bits()));

    if (crashed) {
        rt.beginTxn(pool);
        for (std::uint64_t i = 500; i < 600; ++i)
            tree.insert(i * 3, i);
        // "crash": save mid-transaction, never commit.
        const std::string path = "/tmp/upr_inspector_crashed.img";
        rt.pools().saveImage(pool, path);
        rt.abortTxn();
        return path;
    }
    const std::string path = "/tmp/upr_inspector_clean.img";
    rt.pools().saveImage(pool, path);
    return path;
}

} // namespace

int
main(int argc, char **argv)
try {
    if (argc >= 2) {
        const bool recover =
            argc >= 3 && std::strcmp(argv[2], "--recover") == 0;
        Pool pool = loadImage(argv[1]);
        inspect(pool, recover);
        return 0;
    }

    // Self-demo: a clean image and a crashed one.
    std::printf("### clean image ###\n");
    const std::string clean = buildDemoImage(false);
    {
        Pool pool = loadImage(clean);
        inspect(pool, false);
    }

    std::printf("\n### crashed-mid-transaction image ###\n");
    const std::string crashed = buildDemoImage(true);
    {
        Pool pool = loadImage(crashed);
        inspect(pool, true);
        std::printf("\n(after recovery)\n");
        inspect(pool, false);
    }
    std::remove(clean.c_str());
    std::remove(crashed.c_str());
    return 0;
} catch (const Fault &f) {
    // Damaged images surface as typed Faults (e.g. a CorruptPool from
    // the adopting Pool constructor): report the diagnosis, don't let
    // the runtime print an uncaught-exception backtrace.
    std::fprintf(stderr, "pool_inspector: [%s] %s\n",
                 faultKindName(f.kind()), f.what());
    std::fprintf(stderr,
                 "the image is damaged beyond plain inspection — try "
                 "'uprpool check --repair'\n");
    return 2;
}
