/**
 * @file
 * A persistent key-value store built from the paper's harness: a
 * YCSB-style workload over a pluggable legacy index on NVM, with a
 * save/reopen cycle demonstrating durability through pool images.
 */

#include <cinttypes>
#include <cstdio>
#include <string>

#include "kvstore/kv_store.hh"

using namespace upr;

namespace
{

template <typename Index>
void
runWith(const char *label, const YcsbWorkload &workload)
{
    Runtime::Config cfg;
    cfg.version = Version::Hw;
    Runtime rt(cfg);
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("kv", 256 << 20);

    KvStore<Index> store(MemEnv::persistentEnv(rt, pool));
    const KvRunResult res = store.run(workload);
    store.index().validate();

    std::printf("%-6s  %8" PRIu64 " gets (%5.1f%% hit)  %6" PRIu64
                " sets  %12" PRIu64 " cycles  checksum 0x%016" PRIx64
                "\n",
                label, res.gets,
                100.0 * static_cast<double>(res.getHits) /
                    static_cast<double>(res.gets),
                res.sets, res.cycles, res.checksum);
}

} // namespace

int
main()
{
    // The paper's workload: 10k records, 100k ops, 95/5, latest.
    WorkloadSpec spec;
    spec.operationCount = 20'000; // trimmed for a quick demo
    const YcsbWorkload workload(spec);

    std::printf("YCSB: %zu-record load, %zu ops, 95%% GET, latest "
                "distribution\n",
                workload.loadOps().size(), workload.runOps().size());

    runWith<HashMap<std::uint64_t, std::uint64_t>>("Hash", workload);
    runWith<RbTree<std::uint64_t, std::uint64_t>>("RB", workload);
    runWith<SplayTree<std::uint64_t, std::uint64_t>>("Splay",
                                                     workload);
    runWith<AvlTree<std::uint64_t, std::uint64_t>>("AVL", workload);
    runWith<ScapegoatTree<std::uint64_t, std::uint64_t>>("SG",
                                                         workload);

    // Durability: populate, snapshot to a host file, "restart", and
    // query the reopened image.
    std::printf("\ndurability demo (RB index):\n");
    const std::string image = "/tmp/upr_kv_demo.img";
    std::uint64_t want = 0;
    {
        Runtime rt;
        RuntimeScope scope(rt);
        const PoolId pool = rt.createPool("kv", 64 << 20);
        KvStore<RbTree<std::uint64_t, std::uint64_t>> store(
            MemEnv::persistentEnv(rt, pool));
        for (std::uint64_t i = 0; i < 1000; ++i)
            store.set(i, i * i);
        want = store.get(999).value();
        rt.pools().pool(pool).setRootOff(PtrRepr::offsetOf(
            store.index().header().bits()));
        rt.pools().saveImage(pool, image);
        std::printf("  saved pool image to %s\n", image.c_str());
    }
    {
        Runtime rt2; // a different "process", different addresses
        RuntimeScope scope(rt2);
        const PoolId pool = rt2.pools().loadImage(image, "kv");
        using Tree = RbTree<std::uint64_t, std::uint64_t>;
        Tree index(MemEnv::persistentEnv(rt2, pool),
                   Ptr<Tree::Header>::fromBits(PtrRepr::makeRelative(
                       pool, rt2.pools().pool(pool).rootOff())));
        index.validate();
        const std::uint64_t got = index.find(999).value();
        std::printf("  reopened: 999 -> %" PRIu64 " (%s)\n", got,
                    got == want ? "correct" : "WRONG");
        if (got != want)
            return 1;
    }
    std::remove("/tmp/upr_kv_demo.img");
    return 0;
}
