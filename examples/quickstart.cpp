/**
 * @file
 * Quickstart: the user-transparent persistent reference workflow.
 *
 * 1. Create a runtime (one simulated process) and a persistent pool.
 * 2. Build a persistent linked structure through plain Ptr<T> code.
 * 3. Detach and reopen the pool — it lands at a *different* virtual
 *    address — and walk the structure again, unchanged.
 *
 * The takeaway: the code below never distinguishes persistent from
 * volatile pointers; the 8-byte tagged representation plus runtime
 * checks (Fig 2/3 of the paper) do the work.
 */

#include <cinttypes>
#include <cstdio>

#include "containers/memory_env.hh"

using namespace upr;

namespace
{

/** An ordinary-looking node type. */
struct Item
{
    Ptr<Item> next;
    std::uint64_t value = 0;
};

} // namespace

int
main()
{
    // One simulated process running the paper's HW version.
    Runtime rt;
    RuntimeScope scope(rt);

    // Create a 16 MiB persistent pool.
    const PoolId pool = rt.createPool("quickstart-pool", 16 << 20);
    std::printf("pool %u attached at 0x%" PRIx64 "\n", pool,
                rt.pools().baseOf(pool));

    // Build a small persistent list: 1 -> 2 -> ... -> 10.
    MemEnv env = MemEnv::persistentEnv(rt, pool);
    Ptr<Item> head = Ptr<Item>::null();
    for (std::uint64_t v = 10; v >= 1; --v) {
        Ptr<Item> item = env.alloc<Item>();
        item.setField(&Item::value, v);
        item.setPtrField(&Item::next, head); // storeP semantics
        head = item;
    }

    // Remember the list head in the pool's root slot.
    rt.pools().pool(pool).setRootOff(PtrRepr::offsetOf(head.bits()));

    // Detach ... and reopen: the pool moves to a fresh address, as
    // it would in a different process on a different day.
    const SimAddr before = rt.pools().baseOf(pool);
    rt.pools().detach(pool);
    rt.pools().openPool("quickstart-pool");
    const SimAddr after = rt.pools().baseOf(pool);
    std::printf("pool relocated: 0x%" PRIx64 " -> 0x%" PRIx64 "\n",
                before, after);

    // Recover the head from the root offset and walk the list. The
    // stored 'next' pointers are relative addresses; dereferencing
    // them just works.
    Ptr<Item> cur = Ptr<Item>::fromBits(
        PtrRepr::makeRelative(pool, rt.pools().pool(pool).rootOff()));
    std::uint64_t sum = 0;
    std::printf("list after relocation:");
    while (!cur.isNull()) {
        const std::uint64_t v = cur.field(&Item::value);
        std::printf(" %" PRIu64, v);
        sum += v;
        cur = cur.ptrField(&Item::next);
    }
    std::printf("\nsum = %" PRIu64 " (expected 55)\n", sum);

    // Peek under the hood: the stored pointer format in NVM is
    // relative (bit 63 set), exactly the Fig 2 representation.
    Ptr<Item> h = Ptr<Item>::fromBits(
        PtrRepr::makeRelative(pool, rt.pools().pool(pool).rootOff()));
    const PtrBits raw =
        rt.space().read<PtrBits>(h.resolve() + 0 /* next field */);
    std::printf("stored 'next' bits: 0x%016" PRIx64 " (relative=%d)\n",
                raw, PtrRepr::isRelative(raw) ? 1 : 0);

    std::printf("cycles simulated: %" PRIu64 "\n",
                rt.machine().now());
    return sum == 55 ? 0 : 1;
}
