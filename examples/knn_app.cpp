/**
 * @file
 * The Sec VII-E case study as an application: KNN over the iris-
 * statistics dataset, with three of its four matrices persisted
 * (everything except the input), exactly the paper's placement.
 *
 * With user-transparent persistent references the placement choice is
 * a constructor argument; no KNN or matrix-library code changes among
 * the 16 possible DRAM/NVM placements.
 */

#include <cinttypes>
#include <cstdio>

#include "ml/iris.hh"
#include "ml/knn.hh"

using namespace upr;

int
main()
{
    Runtime rt;
    RuntimeScope scope(rt);
    const PoolId pool = rt.createPool("knn-pool", 128 << 20);
    MemEnv penv = MemEnv::persistentEnv(rt, pool);
    MemEnv venv = MemEnv::volatileEnv(rt);

    const IrisDataset ds = IrisDataset::make();
    std::printf("iris-statistics dataset: %llu samples x %llu "
                "features, 3 classes\n",
                (unsigned long long)IrisDataset::kSamples,
                (unsigned long long)IrisDataset::kFeatures);

    // Paper placement: all matrices on NVM except the input.
    Matrix input = ds.toMatrix(venv);
    Knn::Placement place{venv, penv, penv, penv};

    const Cycles t0 = rt.machine().now();
    Knn::Result res = Knn::search(input, input, 5, place);
    const Cycles t1 = rt.machine().now();

    const std::vector<int> pred =
        Knn::classify(res.neighbors, ds.labels);
    int correct = 0;
    int confusion[3][3] = {};
    for (std::size_t i = 0; i < pred.size(); ++i) {
        correct += pred[i] == ds.labels[i] ? 1 : 0;
        ++confusion[ds.labels[i]][pred[i]];
    }

    std::printf("k=5 leave-self-in accuracy: %d/150 (%.1f%%)\n",
                correct, correct / 1.5);
    std::printf("confusion matrix (rows = truth):\n");
    const char *names[3] = {"setosa", "versicolor", "virginica"};
    for (int r = 0; r < 3; ++r) {
        std::printf("  %-10s", names[r]);
        for (int c = 0; c < 3; ++c)
            std::printf(" %3d", confusion[r][c]);
        std::printf("\n");
    }

    // The two output matrices are persistent: survive relocation.
    rt.pools().pool(pool).setRootOff(
        PtrRepr::offsetOf(res.neighbors.meta().bits()));
    rt.pools().detach(pool);
    rt.pools().openPool("knn-pool");
    Matrix reopened(penv, Ptr<Matrix::Meta>::fromBits(
                              PtrRepr::makeRelative(
                                  pool,
                                  rt.pools().pool(pool).rootOff())));
    std::printf("neighbors matrix reopened after relocation: "
                "%llux%llu, first neighbor of sample 0 = %.0f\n",
                (unsigned long long)reopened.rows(),
                (unsigned long long)reopened.cols(),
                reopened.at(0, 0));

    std::printf("KNN search cycles: %" PRIu64 "\n", t1 - t0);
    std::printf("translation traffic: rel->abs %" PRIu64
                ", abs->rel %" PRIu64 ", POLB accesses %" PRIu64 "\n",
                rt.relToAbs(), rt.absToRel(),
                rt.machine().polb().accesses());
    return correct > 135 ? 0 : 1;
}
